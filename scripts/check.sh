#!/usr/bin/env bash
# check.sh — the tier-2 quality gate: formatting, vet, the domain-aware
# mclint analyzer, the race-enabled test suite, and a short fuzz pass
# over the schedulability and generator invariants. Everything here uses
# only the Go toolchain; there are no external dependencies.
#
# Usage: scripts/check.sh [fuzztime]
#   fuzztime  per-target fuzz budget (default 10s; "0s" skips fuzzing)

set -euo pipefail
cd "$(dirname "$0")/.."

FUZZTIME="${1:-10s}"

step() { printf '== %s\n' "$*"; }

step "gofmt"
unformatted=$(gofmt -l .)
if [[ -n "$unformatted" ]]; then
    echo "gofmt: the following files need formatting:" >&2
    echo "$unformatted" >&2
    exit 1
fi

step "go vet"
go vet ./...

step "go build"
go build ./...

step "mclint"
go run ./cmd/mclint ./...

step "go test -race"
go test -race ./...

# The fault-tolerance suite runs in the full -race pass above; repeat
# it by name so a filtered or cached run can never skip the
# checkpoint/resume, quarantine and fault-injection proofs.
step "fault-tolerance suite (race)"
go test -race -count=1 -run 'FaultInject|Resume|Quarantine' ./internal/runner/... ./cmd/mcexp

# Same discipline for the observability proofs: the sim-oracle
# differential test (every analytical accept survives adversarial
# simulation), the metrics/CSV agreement suite and the end-to-end
# golden-file comparison must run by name on every gate.
step "oracle + metrics + golden suite"
go test -count=1 -run 'SimOracle|Metrics|Golden|ZeroAllocs' \
    ./internal/partition ./internal/experiments ./internal/runner ./cmd/mcexp

# The scenario layer by name: CDF and arrival-stream validation, the
# online sweep aggregation/determinism/quarantine proofs, the online
# sim-oracle churn differential, the scenario checkpoint identity
# (version-1 static journals resume byte-identically, protocol
# mismatches refuse), and the fixed-seed online CLI goldens.
step "scenario-golden"
go test -count=1 \
    -run 'CDF|Stream|ArrivalProcess|Online|Scenario|Timeline|Version1Static' \
    ./internal/taskgen ./internal/experiments ./internal/sim \
    ./internal/runner ./internal/partition ./cmd/mcexp

# The admission daemon's chaos suite by name and under the race
# detector: panic quarantine at every injection point, slow-backend
# partial verdicts, stalls past the grace window, and the concurrent
# mixed-fault storm. The daemon must keep serving correct verdicts
# while faults fire; any wedge, lost verdict or race fails the gate.
step "serve-chaos suite (race)"
go test -race -count=1 -run 'Chaos|GracefulDrain|QueueFullSheds|DegradedMode' \
    ./internal/serve/...

# The static-analysis suite by name: the pass fixtures (seeded
# violations caught on exact lines), the self-hosting real-tree-clean
# gate, and the runtime twin of the //mc:allocfree annotations. The
# `mclint` step above already fails on real findings; this one fails
# when the analyzer itself regresses.
step "mclint suite + alloc-free proof"
go test -count=1 ./internal/lint
go test -count=1 -run 'HotPathAllocFree|BackendSchedulable|SessionAllocFree' ./internal/partition ./internal/fpamc

# The incremental-vs-batch differential wall by name: the deterministic
# agreement sweep (delta commits vs Reanalyze-forced recompute, both
# backends, all schemes, batch and churn), the session-replays-batch
# proof, and the hand-computed delta fixtures.
step "incremental differential wall"
go test -count=1 -run 'IncrementalAgreement|SessionMatchesBatch|Delta|WarmStart' \
    ./internal/partition ./internal/edfvd ./internal/fpamc

# Coverage ratchet: the line coverage of the internal packages must not
# drop below the floor recorded when the gate was introduced. Raise the
# floor when coverage durably improves; never lower it.
step "coverage ratchet (internal/...)"
COVER_FLOOR=92.7
profile=$(mktemp)
trap 'rm -f "$profile"' EXIT
go test -count=1 -coverprofile="$profile" ./internal/... >/dev/null
total=$(go tool cover -func="$profile" | awk '/^total:/ {sub(/%/, "", $3); print $3}')
echo "total internal/... coverage: ${total}% (floor ${COVER_FLOOR}%)"
awk -v t="$total" -v f="$COVER_FLOOR" 'BEGIN { exit (t+0 >= f+0) ? 0 : 1 }' || {
    echo "coverage ratchet: ${total}% is below the ${COVER_FLOOR}% floor" >&2
    exit 1
}

if [[ "$FUZZTIME" != "0s" && "$FUZZTIME" != "0" ]]; then
    step "fuzz (${FUZZTIME} per target)"
    go test ./internal/edfvd -run='^$' -fuzz='^FuzzTheorem1Feasible$' -fuzztime="$FUZZTIME"
    go test ./internal/edfvd -run='^$' -fuzz='^FuzzDualAgreement$' -fuzztime="$FUZZTIME"
    go test ./internal/edfvd -run='^$' -fuzz='^FuzzProbedScreens$' -fuzztime="$FUZZTIME"
    go test ./internal/taskgen -run='^$' -fuzz='^FuzzGenerate$' -fuzztime="$FUZZTIME"
    go test ./internal/taskgen -run='^$' -fuzz='^FuzzCDFSource$' -fuzztime="$FUZZTIME"
    go test ./internal/fpamc -run='^$' -fuzz='^FuzzBackendAgreement$' -fuzztime="$FUZZTIME"
    go test ./internal/partition -run='^$' -fuzz='^FuzzIncrementalAgreement$' -fuzztime="$FUZZTIME"
fi

# Non-gating: performance tracking for the partitioning fast path, the
# incremental online events and the end-to-end online scenario.
# Regressions show up in BENCH_PR10.json but do not fail the gate.
step "bench (non-gating)"
scripts/bench.sh BENCH_PR10.json || echo "bench: failed (non-gating)" >&2

step "OK"
