#!/usr/bin/env bash
# bench.sh — the PR-2 performance gate: runs the partitioning fast-path
# benchmarks with fixed flags and writes BENCH_PR2.json, comparing
# against the pre-PR baselines recorded below (measured on the same
# machine immediately before the fast path landed).
#
# Usage: scripts/bench.sh [output.json]
#
# Acceptance criteria checked here (reported, not enforced — the
# script always exits 0 so it can run as a non-gating check step):
#   - BenchmarkPartition/CA-TPA via Partitioner: 0 allocs/op steady state
#   - BenchmarkFig1_NSU: >= 3x speedup over the pre-PR baseline

set -euo pipefail
cd "$(dirname "$0")/.."

OUT="${1:-BENCH_PR2.json}"
# The PR number is derived from the output name (BENCH_PR<N>.json), so
# later PRs can re-run the same gate against the PR-2 baselines:
#   scripts/bench.sh BENCH_PR5.json
PR_NUM=$(basename "$OUT" | sed -n 's/^BENCH_PR\([0-9][0-9]*\)\.json$/\1/p')
PR_NUM="${PR_NUM:-2}"

# Pre-PR baselines (commit 92ce90e, go test -bench, -benchtime 10x for
# Fig1, default for the micro benchmarks; single-core container).
BASE_FIG1_NS=165278614
BASE_FIG1_ALLOCS=269617
BASE_CATPA_NS=161861
BASE_CATPA_ALLOCS=233
BASE_CATPA_BYTES=14406
BASE_TASKGEN_NS=30937
BASE_TASKGEN_ALLOCS=244

TMP="$(mktemp)"
trap 'rm -f "$TMP"' EXIT

# The Fig1 gate runs 3 counted repetitions and scores the minimum:
# on a single-CPU container the noise is additive (scheduler
# interference only ever slows an iteration down), so the minimum is
# the robust estimator of the true cost, while means drift with load.
echo "== bench: Fig1 sweep (10 iterations x 3, scored on the minimum)" >&2
go test -run '^$' -bench '^BenchmarkFig1_NSU$' -benchtime 10x -count 3 -benchmem . | tee -a "$TMP"
echo "== bench: partition fast path / online events / taskgen / sweep throughput" >&2
go test -run '^$' -bench '^(BenchmarkPartition|BenchmarkPartitionLegacy|BenchmarkOnlineEvent|BenchmarkTaskGen|BenchmarkSweepThroughput|BenchmarkOnlineScenario)$' -benchmem . | tee -a "$TMP"

# pick <pattern> <unit> — extracts the value preceding the given unit
# token on the first benchmark line matching pattern.
pick() {
    awk -v pat="$1" -v unit="$2" \
        '$0 ~ pat { for (i = 2; i <= NF; i++) if ($i == unit) { print $(i-1); exit } }' "$TMP"
}

# pickmin — like pick, but the minimum over all matching lines
# (for -count > 1 repetitions).
pickmin() {
    awk -v pat="$1" -v unit="$2" \
        '$0 ~ pat { for (i = 2; i <= NF; i++) if ($i == unit && (best == "" || $(i-1)+0 < best+0)) best = $(i-1) }
         END { if (best != "") print best }' "$TMP"
}

FIG1_NS=$(pickmin '^BenchmarkFig1_NSU' 'ns/op')
FIG1_ALLOCS=$(pick '^BenchmarkFig1_NSU' 'allocs/op')
CATPA_NS=$(pick '^BenchmarkPartition/CA-TPA' 'ns/op')
CATPA_BYTES=$(pick '^BenchmarkPartition/CA-TPA' 'B/op')
CATPA_ALLOCS=$(pick '^BenchmarkPartition/CA-TPA' 'allocs/op')
LEGACY_NS=$(pick '^BenchmarkPartitionLegacy/CA-TPA' 'ns/op')
TASKGEN_NS=$(pick '^BenchmarkTaskGen' 'ns/op')
TASKGEN_ALLOCS=$(pick '^BenchmarkTaskGen' 'allocs/op')
SETS_PER_SEC=$(pick '^BenchmarkSweepThroughput' 'sets/s')
EVENT_BATCH_NS=$(pick '^BenchmarkOnlineEvent/batch' 'ns/op')
EVENT_INC_NS=$(pick '^BenchmarkOnlineEvent/incremental' 'ns/op')
EVENT_INC_ALLOCS=$(pick '^BenchmarkOnlineEvent/incremental' 'allocs/op')
SCENARIO_NS=$(pick '^BenchmarkOnlineScenario' 'ns/op')
SCENARIO_ARRIVALS=$(pick '^BenchmarkOnlineScenario' 'arrivals/s')
SCENARIO_ADMIT=$(pick '^BenchmarkOnlineScenario' 'admit_rate')

SPEEDUP=$(awk -v a="$BASE_FIG1_NS" -v b="$FIG1_NS" 'BEGIN { printf "%.3f", a/b }')
EVENT_SPEEDUP=$(awk -v a="$EVENT_BATCH_NS" -v b="$EVENT_INC_NS" 'BEGIN { if (b+0 > 0) printf "%.1f", a/b }')

# The Fig1 floor ratchets with the PRs that claimed it: 3x when the
# fast path landed (PR 2), 6x once the incremental deltas and the
# specialized probe loops landed (PR 9).
FIG1_MIN=3.0
if [[ "$PR_NUM" -ge 9 ]]; then
    FIG1_MIN=6.0
fi

cat > "$OUT" <<EOF
{
  "pr": $PR_NUM,
  "description": "partitioning fast path + incremental online events, measured against the PR-2 baselines (Fig1 scored best-of-3 minimum)",
  "baseline_commit": "92ce90e",
  "baseline": {
    "fig1_nsu": {"ns_per_op": $BASE_FIG1_NS, "allocs_per_op": $BASE_FIG1_ALLOCS},
    "partition_catpa": {"ns_per_op": $BASE_CATPA_NS, "allocs_per_op": $BASE_CATPA_ALLOCS, "bytes_per_op": $BASE_CATPA_BYTES},
    "taskgen": {"ns_per_op": $BASE_TASKGEN_NS, "allocs_per_op": $BASE_TASKGEN_ALLOCS}
  },
  "current": {
    "fig1_nsu": {"ns_per_op": ${FIG1_NS:-null}, "allocs_per_op": ${FIG1_ALLOCS:-null}},
    "partition_catpa": {"ns_per_op": ${CATPA_NS:-null}, "allocs_per_op": ${CATPA_ALLOCS:-null}, "bytes_per_op": ${CATPA_BYTES:-null}},
    "partition_catpa_legacy_oneshot": {"ns_per_op": ${LEGACY_NS:-null}},
    "taskgen": {"ns_per_op": ${TASKGEN_NS:-null}, "allocs_per_op": ${TASKGEN_ALLOCS:-null}},
    "sweep_throughput_sets_per_sec": ${SETS_PER_SEC:-null},
    "online_event_batch": {"ns_per_op": ${EVENT_BATCH_NS:-null}},
    "online_event_incremental": {"ns_per_op": ${EVENT_INC_NS:-null}, "allocs_per_op": ${EVENT_INC_ALLOCS:-null}},
    "online_scenario": {"ns_per_op": ${SCENARIO_NS:-null}, "arrivals_per_sec": ${SCENARIO_ARRIVALS:-null}, "admit_rate": ${SCENARIO_ADMIT:-null}}
  },
  "fig1_speedup": ${SPEEDUP:-null},
  "incremental_event_speedup": ${EVENT_SPEEDUP:-null},
  "criteria": {
    "fig1_speedup_min": ${FIG1_MIN},
    "partition_catpa_allocs_max": 0,
    "online_event_incremental_allocs_max": 0,
    "incremental_event_speedup_min": 10.0,
    "online_scenario_arrivals_per_sec_min": 100000
  }
}
EOF

echo "== wrote $OUT (Fig1 speedup ${SPEEDUP}x >= ${FIG1_MIN}x, event speedup ${EVENT_SPEEDUP:-?}x, CA-TPA allocs/op ${CATPA_ALLOCS:-?})" >&2
