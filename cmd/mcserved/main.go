// Command mcserved runs the admission-control daemon: an HTTP/JSON
// service answering the paper's partitioning question on pooled
// Partitioners, with per-request deadlines, bounded-queue
// backpressure, probe-only graceful degradation past a queue
// watermark, and per-request panic quarantine (see internal/serve).
//
// Endpoints:
//
//	POST /v1/admit   admission question (serve.Request JSON)
//	GET  /healthz    liveness (always 200 while the process runs)
//	GET  /readyz     readiness (503 while draining)
//	GET  /metricz    metrics snapshot (obs JSON)
//
// The first SIGINT/SIGTERM starts a graceful drain: /readyz flips to
// 503, in-flight and queued admissions finish, then the process
// exits 0. A second signal aborts immediately with exit code 3.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"catpa/internal/obs"
	"catpa/internal/serve"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("mcserved", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		addr      = fs.String("addr", "localhost:8377", "listen address")
		queue     = fs.Int("queue", 256, "admission queue depth (full queue sheds with 429)")
		workers   = fs.Int("workers", 0, "evaluation workers (0 = GOMAXPROCS)")
		watermark = fs.Int("watermark", 0, "queue depth that triggers degraded mode (0 = 3/4 of queue, negative disables)")
		timeout   = fs.Duration("timeout", 2*time.Second, "per-request deadline")
		cache     = fs.Int("cache", 1024, "verdict cache entries (negative disables)")
		maxTasks  = fs.Int("max-tasks", 10000, "largest accepted task set")
		maxCores  = fs.Int("max-cores", 1024, "largest accepted core count")
		drain     = fs.Duration("drain", 30*time.Second, "graceful drain budget on the first signal")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	reg := obs.NewRegistry()
	srv := serve.NewServer(serve.Config{
		QueueDepth:       *queue,
		Workers:          *workers,
		DegradeWatermark: *watermark,
		RequestTimeout:   *timeout,
		CacheSize:        *cache,
		MaxTasks:         *maxTasks,
		MaxCores:         *maxCores,
		Metrics:          reg,
	})
	hs := &http.Server{Addr: *addr, Handler: srv}

	errc := make(chan error, 1)
	go func() { errc <- hs.ListenAndServe() }()

	sig := make(chan os.Signal, 2)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	fmt.Fprintf(stdout, "mcserved: serving on %s (queue %d, timeout %v)\n", *addr, *queue, *timeout)

	select {
	case err := <-errc:
		fmt.Fprintf(stderr, "mcserved: %v\n", err)
		return 1
	case s := <-sig:
		fmt.Fprintf(stderr, "mcserved: %v: draining (second signal aborts)\n", s)
	}

	// Second signal: abort without waiting for the drain.
	go func() {
		<-sig
		fmt.Fprintln(stderr, "mcserved: aborted")
		os.Exit(3)
	}()

	ctx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	code := 0
	if err := srv.Shutdown(ctx); err != nil {
		fmt.Fprintf(stderr, "mcserved: drain incomplete: %v\n", err)
		code = 1
	}
	if err := hs.Shutdown(ctx); err != nil {
		fmt.Fprintf(stderr, "mcserved: http shutdown: %v\n", err)
		code = 1
	}
	fmt.Fprintln(stdout, "mcserved: drained")
	return code
}
