// Command mcserveload is the wrk-style load harness for mcserved: it
// offers taskgen-generated admission requests at one or more fixed
// rates through the retrying client and reports latency percentiles
// plus shed and degraded rates as JSON (the BENCH_PR8.json format).
//
// Usage:
//
//	mcserveload -url http://localhost:8377 -rps 200,2000 -duration 5s
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
	"time"

	"catpa/internal/serve"
	"catpa/internal/serve/client"
	"catpa/internal/taskgen"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("mcserveload", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		url      = fs.String("url", "http://localhost:8377", "daemon base URL")
		rates    = fs.String("rps", "200", "comma-separated offered loads (requests/second)")
		duration = fs.Duration("duration", 5*time.Second, "run length per load level")
		conns    = fs.Int("conns", 16, "concurrent senders")
		budget   = fs.Duration("budget", time.Second, "per-request deadline budget (retries included)")
		sets     = fs.Int("sets", 16, "distinct task sets in the corpus")
		m        = fs.Int("m", 8, "cores per admission question")
		nsu      = fs.Float64("nsu", 0.6, "normalized system utilization of generated sets")
		n        = fs.Int("n", 48, "tasks per generated set")
		schemes  = fs.String("schemes", "", "comma-separated schemes per request (empty = server default)")
		fullFrac = fs.Float64("require-full-frac", 0, "fraction of the corpus marked require_full (refuses degraded verdicts)")
		seed     = fs.Int64("seed", 1, "corpus generator seed")
		desc     = fs.String("description", "", "description embedded in the report")
		pr       = fs.Int("pr", 0, "PR number embedded in the report (BENCH_PR<n>.json convention)")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	cfg := taskgen.DefaultConfig()
	cfg.M, cfg.K, cfg.NSU = *m, 2, *nsu
	cfg.N = taskgen.IntRange{Lo: *n, Hi: *n}
	var schemeList []string
	if *schemes != "" {
		schemeList = strings.Split(*schemes, ",")
	}
	corpus := make([]*serve.Request, *sets)
	for i := range corpus {
		corpus[i] = &serve.Request{
			TaskSet:     taskgen.GenerateIndexed(&cfg, *seed, i),
			M:           *m,
			Schemes:     schemeList,
			RequireFull: float64(i) < *fullFrac*float64(*sets),
			Tag:         fmt.Sprintf("load-%d", i),
		}
	}

	c, err := client.New(client.Config{BaseURL: *url, Seed: *seed})
	if err != nil {
		fmt.Fprintf(stderr, "mcserveload: %v\n", err)
		return 2
	}

	report := struct {
		PR          int                  `json:"pr,omitempty"`
		Description string               `json:"description,omitempty"`
		URL         string               `json:"url"`
		Corpus      map[string]any       `json:"corpus"`
		Levels      []*client.LoadReport `json:"levels"`
	}{
		PR:          *pr,
		Description: *desc,
		URL:         *url,
		Corpus:      map[string]any{"sets": *sets, "m": *m, "nsu": *nsu, "n": *n, "seed": *seed, "require_full_frac": *fullFrac},
	}
	for _, field := range strings.Split(*rates, ",") {
		rps, err := strconv.ParseFloat(strings.TrimSpace(field), 64)
		if err != nil || rps <= 0 {
			fmt.Fprintf(stderr, "mcserveload: bad -rps entry %q\n", field)
			return 2
		}
		fmt.Fprintf(stderr, "mcserveload: offering %.0f req/s for %v...\n", rps, *duration)
		rep, err := client.RunLoad(context.Background(), client.LoadConfig{
			Client:        c,
			Corpus:        corpus,
			RPS:           rps,
			Duration:      *duration,
			Conns:         *conns,
			RequestBudget: *budget,
		})
		if err != nil {
			fmt.Fprintf(stderr, "mcserveload: load run at %.0f rps: %v\n", rps, err)
			return 1
		}
		report.Levels = append(report.Levels, rep)
	}

	enc := json.NewEncoder(stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(&report); err != nil {
		fmt.Fprintf(stderr, "mcserveload: %v\n", err)
		return 1
	}
	return 0
}
