// Command mcsim partitions a mixed-criticality task set and executes
// the resulting partition in the event-driven EDF-VD + AMC runtime
// simulator, reporting per-core completions, mode switches, dropped
// work and — the property the analysis guarantees — deadline misses.
//
// Usage:
//
//	mcgen -nsu 0.5 | mcsim -m 8 -model worst
//	mcsim -in taskset.json -m 8 -scheme CA-TPA -model random -overrun 0.1
//
// Models:
//
//	worst    every job runs to its own-level WCET (adversarial)
//	nominal  every job runs to its level-1 WCET
//	level=k  every job runs to its level-k budget
//	random   uniform demands with sporadic overruns (-overrun)
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"catpa"
)

func main() {
	var (
		in      = flag.String("in", "", "task-set JSON file (default stdin)")
		m       = flag.Int("m", 8, "number of cores")
		k       = flag.Int("k", 0, "criticality levels (default: max in set)")
		scheme  = flag.String("scheme", "CA-TPA", "partitioning heuristic")
		model   = flag.String("model", "worst", "execution model: worst|nominal|random|level=K")
		overrun = flag.Float64("overrun", 0.1, "overrun probability (random model)")
		horizon = flag.Float64("horizon", 0, "simulated time (0 = 20x max period)")
		seed    = flag.Int64("seed", 1, "seed for the random model")
	)
	flag.Parse()

	ts, err := readSet(*in)
	if err != nil {
		fatal(err)
	}
	levels := *k
	if levels == 0 {
		levels = ts.MaxCrit()
	}
	sch, err := catpa.ParseScheme(*scheme)
	if err != nil {
		fatal(err)
	}

	res := catpa.Partition(ts, *m, levels, sch, nil)
	if !res.Feasible {
		fmt.Fprintf(os.Stderr, "mcsim: %s found no feasible partition (task %s); simulating anyway is meaningless\n",
			sch, ts.Tasks[res.FailedTask].Label())
		os.Exit(2)
	}
	fmt.Println(res)

	stats := catpa.SimulateSystem(catpa.SystemConfig{
		Subsets: res.Subsets(ts),
		K:       levels,
		Horizon: *horizon,
		ModelFor: func(core int) catpa.ExecModel {
			return buildModel(*model, *overrun, *seed+int64(core))
		},
	})
	fmt.Print(stats)
	if miss := stats.Missed(); miss > 0 {
		fmt.Printf("DEADLINE MISSES: %d\n", miss)
		os.Exit(3)
	}
	fmt.Printf("no deadline misses (%d jobs completed, %d mode switches)\n",
		stats.Completed(), stats.ModeSwitches())
}

func buildModel(name string, overrun float64, seed int64) catpa.ExecModel {
	switch {
	case name == "worst":
		return catpa.WorstCaseModel{}
	case name == "nominal":
		return catpa.NominalModel{}
	case name == "random":
		return catpa.NewRandomModel(0.3, overrun, seed)
	case strings.HasPrefix(name, "level="):
		var k int
		if _, err := fmt.Sscanf(name, "level=%d", &k); err != nil {
			fatal(fmt.Errorf("invalid model %q", name))
		}
		return catpa.LevelModel{Level: k}
	}
	fatal(fmt.Errorf("unknown model %q", name))
	return nil
}

func readSet(path string) (*catpa.TaskSet, error) {
	var data []byte
	var err error
	if path == "" {
		data, err = io.ReadAll(os.Stdin)
	} else {
		data, err = os.ReadFile(path)
	}
	if err != nil {
		return nil, err
	}
	var ts catpa.TaskSet
	if err := json.Unmarshal(data, &ts); err != nil {
		return nil, fmt.Errorf("parsing task set: %w", err)
	}
	return &ts, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "mcsim:", err)
	os.Exit(1)
}
