// Command catpa partitions a mixed-criticality task set onto M cores
// with one of the five heuristics of Han et al. (ICPP 2016) and
// reports the resulting per-core subsets, utilizations and EDF-VD
// parameters.
//
// Usage:
//
//	catpa -in taskset.json -m 8 -scheme CA-TPA
//	mcgen -nsu 0.55 | catpa -m 8 -scheme CA-TPA -trace
//
// With no -in flag the task set is read from stdin. -compare runs all
// five schemes side by side.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"strconv"

	"catpa"
	"catpa/internal/textplot"
)

func main() {
	var (
		in      = flag.String("in", "", "task-set JSON file (default stdin)")
		m       = flag.Int("m", 8, "number of cores")
		k       = flag.Int("k", 0, "criticality levels (default: max in set)")
		scheme  = flag.String("scheme", "CA-TPA", "heuristic: WFD|FFD|BFD|Hybrid|CA-TPA")
		alpha   = flag.Float64("alpha", 0.7, "imbalance threshold (CA-TPA)")
		trace   = flag.Bool("trace", false, "print the allocation trace")
		compare = flag.Bool("compare", false, "run all five schemes")
		asJSON  = flag.Bool("json", false, "emit the result as JSON")
		useFP   = flag.Bool("fp", false, "use partitioned fixed-priority AMC-rtb instead of EDF-VD (dual-criticality sets, WFD/FFD/BFD/Hybrid)")
	)
	flag.Parse()

	ts, err := readSet(*in)
	if err != nil {
		fatal(err)
	}
	levels := *k
	if levels == 0 {
		levels = ts.MaxCrit()
	}

	if *compare {
		rows := [][]string{{"scheme", "feasible", "Usys", "Uavg", "imbalance"}}
		for _, s := range catpa.Schemes {
			r := catpa.Partition(ts, *m, levels, s, &catpa.PartitionOptions{Alpha: *alpha})
			row := []string{s.String(), strconv.FormatBool(r.Feasible), "-", "-", "-"}
			if r.Feasible {
				row[2] = fmt.Sprintf("%.4f", r.Usys)
				row[3] = fmt.Sprintf("%.4f", r.Uavg)
				row[4] = fmt.Sprintf("%.4f", r.Imbalance)
			}
			rows = append(rows, row)
		}
		fmt.Print(textplot.AlignedTable(rows))
		return
	}

	sch, err := catpa.ParseScheme(*scheme)
	if err != nil {
		fatal(err)
	}
	var r *catpa.PartitionResult
	if *useFP {
		if r, err = catpa.FPPartition(ts, *m, sch); err != nil {
			fatal(err)
		}
	} else {
		r = catpa.Partition(ts, *m, levels, sch, &catpa.PartitionOptions{Alpha: *alpha, Trace: *trace})
	}
	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(r); err != nil {
			fatal(err)
		}
		return
	}

	fmt.Println(r)
	if *trace {
		fmt.Print(r.FormatTrace(ts))
	}
	if !r.Feasible {
		fmt.Printf("first unplaceable task: %s\n", ts.Tasks[r.FailedTask].Label())
		os.Exit(2)
	}
	for c, ci := range r.Cores {
		fmt.Printf("P%-2d U=%.4f load=%.4f cond=k%d tasks:", c+1, ci.Util, ci.OwnLevelLoad, ci.FeasibleK)
		for _, ti := range ci.Tasks {
			fmt.Printf(" %s", ts.Tasks[ti].Label())
		}
		fmt.Println()
		if lam := ci.Lambda; len(lam) > 1 && !math.IsNaN(lam[1]) {
			fmt.Printf("     lambda:")
			for _, l := range lam {
				fmt.Printf(" %.4f", l)
			}
			fmt.Println()
		}
	}
}

func readSet(path string) (*catpa.TaskSet, error) {
	var data []byte
	var err error
	if path == "" {
		data, err = io.ReadAll(os.Stdin)
	} else {
		data, err = os.ReadFile(path)
	}
	if err != nil {
		return nil, err
	}
	var ts catpa.TaskSet
	if err := json.Unmarshal(data, &ts); err != nil {
		return nil, fmt.Errorf("parsing task set: %w", err)
	}
	return &ts, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "catpa:", err)
	os.Exit(1)
}
