// Command mcgen generates synthetic mixed-criticality task sets with
// the Section IV-A protocol of Han et al. (ICPP 2016) and writes them
// as JSON.
//
// Usage:
//
//	mcgen [flags] > taskset.json
//	mcgen -count 10 -o sets/        # sets/set-0000.json ...
//
// Flags:
//
//	-m int        cores the workload targets (default 8)
//	-k int        criticality levels (default 4)
//	-n lo:hi      task-count range (default 40:200)
//	-nsu float    normalized system utilization (default 0.6)
//	-ifc lo:hi    WCET increment-factor range (default 0.4:0.4)
//	-seed int     base seed (default 1)
//	-count int    number of sets to generate (default 1)
//	-o dir        output directory (default: single set to stdout)
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"catpa"
)

func main() {
	var (
		m     = flag.Int("m", 8, "number of cores")
		k     = flag.Int("k", 4, "criticality levels")
		nStr  = flag.String("n", "40:200", "task-count range lo:hi")
		nsu   = flag.Float64("nsu", 0.6, "normalized system utilization")
		ifc   = flag.String("ifc", "0.4:0.4", "increment-factor range lo:hi")
		seed  = flag.Int64("seed", 1, "base seed")
		count = flag.Int("count", 1, "number of task sets")
		out   = flag.String("o", "", "output directory (default stdout)")
	)
	flag.Parse()

	cfg := catpa.DefaultGenConfig()
	cfg.M = *m
	cfg.K = *k
	cfg.NSU = *nsu
	var err error
	if cfg.N, err = parseIntRange(*nStr); err != nil {
		fatal(err)
	}
	if cfg.IFC, err = parseRange(*ifc); err != nil {
		fatal(err)
	}
	if err := cfg.Validate(); err != nil {
		fatal(err)
	}

	for i := 0; i < *count; i++ {
		ts := catpa.GenerateTaskSet(&cfg, *seed, i)
		data, err := json.MarshalIndent(ts, "", "  ")
		if err != nil {
			fatal(err)
		}
		if *out == "" {
			if *count > 1 {
				fatal(fmt.Errorf("use -o for multiple sets"))
			}
			fmt.Println(string(data))
			return
		}
		if err := os.MkdirAll(*out, 0o755); err != nil {
			fatal(err)
		}
		name := filepath.Join(*out, fmt.Sprintf("set-%04d.json", i))
		if err := os.WriteFile(name, data, 0o644); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "wrote %s (N=%d)\n", name, ts.Len())
	}
}

func parseRange(s string) (catpa.Range, error) {
	var r catpa.Range
	if _, err := fmt.Sscanf(s, "%g:%g", &r.Lo, &r.Hi); err != nil {
		return r, fmt.Errorf("invalid range %q (want lo:hi)", s)
	}
	return r, nil
}

func parseIntRange(s string) (catpa.IntRange, error) {
	var r catpa.IntRange
	if _, err := fmt.Sscanf(s, "%d:%d", &r.Lo, &r.Hi); err != nil {
		return r, fmt.Errorf("invalid range %q (want lo:hi)", s)
	}
	return r, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "mcgen:", err)
	os.Exit(1)
}
