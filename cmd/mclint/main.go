// Command mclint runs the repository's domain-aware static analysis
// (see internal/lint) over the module:
//
//	go run ./cmd/mclint ./...            # whole module
//	go run ./cmd/mclint ./internal/...   # subtree
//	go run ./cmd/mclint -disable=feasdoc ./...
//	go run ./cmd/mclint -list            # describe the rules
//
// Findings are printed as file:line:col with the offending rule; the
// exit status is 1 when any finding survives, 2 on load errors.
// Suppress a single finding with a preceding comment:
//
//	//lint:ignore mclint/<rule> <reason>
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"catpa/internal/lint"
)

func main() {
	disable := flag.String("disable", "", "comma-separated rule names to disable")
	list := flag.Bool("list", false, "list the available rules and exit")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(),
			"usage: mclint [-disable=rule,...] [-list] [packages]\n\npackages default to ./...\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	os.Exit(run(*disable, *list, flag.Args()))
}

func run(disable string, list bool, patterns []string) int {
	loader, err := lint.NewLoader(".")
	if err != nil {
		fmt.Fprintln(os.Stderr, "mclint:", err)
		return 2
	}
	rules := lint.DefaultRules(loader.ModulePath)

	if list {
		for _, r := range rules {
			fmt.Printf("%-12s %s\n", r.Name(), r.Doc())
		}
		return 0
	}

	disabled := make(map[string]bool)
	for _, name := range strings.Split(disable, ",") {
		if name = strings.TrimSpace(name); name != "" {
			disabled[name] = true
		}
	}
	known := make(map[string]bool)
	for _, n := range lint.RuleNames(loader.ModulePath) {
		known[n] = true
	}
	for name := range disabled {
		if !known[name] {
			fmt.Fprintf(os.Stderr, "mclint: unknown rule %q in -disable (try -list)\n", name)
			return 2
		}
	}
	enabled := rules[:0]
	for _, r := range rules {
		if !disabled[r.Name()] {
			enabled = append(enabled, r)
		}
	}

	pkgs, err := loader.Load()
	if err != nil {
		fmt.Fprintln(os.Stderr, "mclint:", err)
		return 2
	}
	pkgs, err = filterPackages(pkgs, patterns, loader.ModulePath, loader.ModuleRoot)
	if err != nil {
		fmt.Fprintln(os.Stderr, "mclint:", err)
		return 2
	}
	if len(pkgs) == 0 {
		// A typo'd pattern silently passing would defeat the gate.
		fmt.Fprintf(os.Stderr, "mclint: no packages match %s\n", strings.Join(patterns, " "))
		return 2
	}

	runner := &lint.Runner{Rules: enabled, KnownRules: lint.RuleNames(loader.ModulePath)}
	findings := runner.Run(pkgs)
	cwd, _ := os.Getwd()
	for _, f := range findings {
		pos := f.Pos
		if rel, err := filepath.Rel(cwd, pos.Filename); err == nil && !strings.HasPrefix(rel, "..") {
			pos.Filename = rel
		}
		fmt.Printf("%s: %s [mclint/%s]\n", pos, f.Message, f.Rule)
	}
	if len(findings) > 0 {
		fmt.Printf("mclint: %d finding(s) in %d package(s)\n", len(findings), len(pkgs))
		return 1
	}
	return 0
}

// filterPackages keeps the packages matching the CLI patterns.
// Supported forms: "./..." (everything), "./dir/..." (subtree),
// "./dir" (exact), and plain import paths with or without "/...".
func filterPackages(pkgs []*lint.Package, patterns []string, modulePath, moduleRoot string) ([]*lint.Package, error) {
	if len(patterns) == 0 {
		return pkgs, nil
	}
	cwd, err := os.Getwd()
	if err != nil {
		return nil, err
	}
	var keep []*lint.Package
	for _, pkg := range pkgs {
		for _, pat := range patterns {
			ok, err := matchPattern(pkg.ImportPath, pat, modulePath, moduleRoot, cwd)
			if err != nil {
				return nil, err
			}
			if ok {
				keep = append(keep, pkg)
				break
			}
		}
	}
	return keep, nil
}

// matchPattern reports whether the import path matches one pattern.
func matchPattern(importPath, pat, modulePath, moduleRoot, cwd string) (bool, error) {
	recursive := false
	if rest, ok := strings.CutSuffix(pat, "/..."); ok {
		recursive = true
		pat = rest
		if pat == "." || pat == "" {
			pat = "./."
		}
	}
	if strings.HasPrefix(pat, ".") { // filesystem-relative pattern
		abs := filepath.Clean(filepath.Join(cwd, pat))
		rel, err := filepath.Rel(moduleRoot, abs)
		if err != nil || strings.HasPrefix(rel, "..") {
			return false, fmt.Errorf("pattern %q is outside the module", pat)
		}
		pat = modulePath
		if rel != "." {
			pat = modulePath + "/" + filepath.ToSlash(rel)
		}
	}
	if importPath == pat {
		return true, nil
	}
	return recursive && strings.HasPrefix(importPath, pat+"/"), nil
}
