// Command mclint runs the repository's domain-aware static analysis
// (see internal/lint) over the module:
//
//	go run ./cmd/mclint ./...            # whole module
//	go run ./cmd/mclint ./internal/...   # subtree
//	go run ./cmd/mclint -pass=allocfree,determinism ./...
//	go run ./cmd/mclint -disable=feasdoc ./...
//	go run ./cmd/mclint -json ./...      # machine-readable findings
//	go run ./cmd/mclint -list            # describe the passes
//
// Findings are printed as file:line:col with the offending pass (or as
// a JSON array with -json); the exit status is 1 when any finding
// survives, 2 on load errors. Suppress a single finding with a
// preceding comment:
//
//	//lint:ignore mclint/<pass> <reason>
//
// Cross-package facts — //mc:allocfree annotations on callees, backend
// registration sites, the determinism call graph — are only complete
// over the whole module, so analysis always runs over every package;
// the CLI patterns select which packages' findings are printed.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"catpa/internal/lint"
)

func main() {
	pass := flag.String("pass", "", "comma-separated pass names to run exclusively (default: all)")
	disable := flag.String("disable", "", "comma-separated pass names to disable")
	jsonOut := flag.Bool("json", false, "emit findings as a JSON array on stdout")
	list := flag.Bool("list", false, "list the available passes and exit")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(),
			"usage: mclint [-pass=pass,...] [-disable=pass,...] [-json] [-list] [packages]\n\npackages default to ./...\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	os.Exit(run(*pass, *disable, *jsonOut, *list, flag.Args()))
}

func run(pass, disable string, jsonOut, list bool, patterns []string) int {
	loader, err := lint.NewLoader(".")
	if err != nil {
		fmt.Fprintln(os.Stderr, "mclint:", err)
		return 2
	}
	passes := lint.DefaultPasses(loader.ModulePath)

	if list {
		for _, a := range passes {
			fmt.Printf("%-14s %s\n", a.Name(), a.Doc())
		}
		return 0
	}

	known := make(map[string]bool)
	for _, n := range lint.PassNames(loader.ModulePath) {
		known[n] = true
	}
	nameSet := func(flagName, csv string) (map[string]bool, bool) {
		set := make(map[string]bool)
		for _, name := range strings.Split(csv, ",") {
			if name = strings.TrimSpace(name); name != "" {
				if !known[name] {
					fmt.Fprintf(os.Stderr, "mclint: unknown pass %q in -%s (try -list)\n", name, flagName)
					return nil, false
				}
				set[name] = true
			}
		}
		return set, true
	}
	only, ok := nameSet("pass", pass)
	if !ok {
		return 2
	}
	disabled, ok := nameSet("disable", disable)
	if !ok {
		return 2
	}
	enabled := passes[:0]
	for _, a := range passes {
		if disabled[a.Name()] {
			continue
		}
		if len(only) > 0 && !only[a.Name()] {
			continue
		}
		enabled = append(enabled, a)
	}
	if len(enabled) == 0 {
		fmt.Fprintln(os.Stderr, "mclint: the -pass/-disable combination enables no passes")
		return 2
	}

	pkgs, err := loader.Load()
	if err != nil {
		fmt.Fprintln(os.Stderr, "mclint:", err)
		return 2
	}
	selected, err := selectPackages(pkgs, patterns, loader.ModulePath, loader.ModuleRoot)
	if err != nil {
		fmt.Fprintln(os.Stderr, "mclint:", err)
		return 2
	}
	if len(selected) == 0 {
		// A typo'd pattern silently passing would defeat the gate.
		fmt.Fprintf(os.Stderr, "mclint: no packages match %s\n", strings.Join(patterns, " "))
		return 2
	}

	// Analyze the whole module (facts must be complete), then keep the
	// findings belonging to the selected packages.
	runner := &lint.Runner{Passes: enabled, KnownPasses: lint.PassNames(loader.ModulePath)}
	all := runner.Run(pkgs)
	findings := all[:0]
	for _, f := range all {
		if selected[f.Pkg] {
			findings = append(findings, f)
		}
	}

	cwd, _ := os.Getwd()
	relativize := func(name string) string {
		if rel, err := filepath.Rel(cwd, name); err == nil && !strings.HasPrefix(rel, "..") {
			return rel
		}
		return name
	}
	if jsonOut {
		type jsonFinding struct {
			Pass    string `json:"pass"`
			Package string `json:"package"`
			File    string `json:"file"`
			Line    int    `json:"line"`
			Column  int    `json:"column"`
			Message string `json:"message"`
		}
		out := make([]jsonFinding, 0, len(findings))
		for _, f := range findings {
			out = append(out, jsonFinding{
				Pass:    f.Pass,
				Package: f.Pkg,
				File:    relativize(f.Pos.Filename),
				Line:    f.Pos.Line,
				Column:  f.Pos.Column,
				Message: f.Message,
			})
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			fmt.Fprintln(os.Stderr, "mclint:", err)
			return 2
		}
	} else {
		for _, f := range findings {
			pos := f.Pos
			pos.Filename = relativize(pos.Filename)
			fmt.Printf("%s: %s [mclint/%s]\n", pos, f.Message, f.Pass)
		}
		if len(findings) > 0 {
			fmt.Printf("mclint: %d finding(s) in %d package(s)\n", len(findings), len(selected))
		}
	}
	if len(findings) > 0 {
		return 1
	}
	return 0
}

// selectPackages returns the import paths matching the CLI patterns.
// Supported forms: "./..." (everything), "./dir/..." (subtree),
// "./dir" (exact), and plain import paths with or without "/...".
func selectPackages(pkgs []*lint.Package, patterns []string, modulePath, moduleRoot string) (map[string]bool, error) {
	keep := make(map[string]bool)
	if len(patterns) == 0 {
		for _, pkg := range pkgs {
			keep[pkg.ImportPath] = true
		}
		return keep, nil
	}
	cwd, err := os.Getwd()
	if err != nil {
		return nil, err
	}
	for _, pkg := range pkgs {
		for _, pat := range patterns {
			ok, err := matchPattern(pkg.ImportPath, pat, modulePath, moduleRoot, cwd)
			if err != nil {
				return nil, err
			}
			if ok {
				keep[pkg.ImportPath] = true
				break
			}
		}
	}
	return keep, nil
}

// matchPattern reports whether the import path matches one pattern.
func matchPattern(importPath, pat, modulePath, moduleRoot, cwd string) (bool, error) {
	recursive := false
	if rest, ok := strings.CutSuffix(pat, "/..."); ok {
		recursive = true
		pat = rest
		if pat == "." || pat == "" {
			pat = "./."
		}
	}
	if strings.HasPrefix(pat, ".") { // filesystem-relative pattern
		abs := filepath.Clean(filepath.Join(cwd, pat))
		rel, err := filepath.Rel(moduleRoot, abs)
		if err != nil || strings.HasPrefix(rel, "..") {
			return false, fmt.Errorf("pattern %q is outside the module", pat)
		}
		pat = modulePath
		if rel != "." {
			pat = modulePath + "/" + filepath.ToSlash(rel)
		}
	}
	if importPath == pat {
		return true, nil
	}
	return recursive && strings.HasPrefix(importPath, pat+"/"), nil
}
