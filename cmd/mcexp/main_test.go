package main

import (
	"context"
	"errors"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestParseFlagsValidation(t *testing.T) {
	cases := []struct {
		name string
		args []string
		want string // substring of the usage error
	}{
		{"sets zero", []string{"-sets", "0"}, "invalid -sets 0"},
		{"sets negative", []string{"-sets", "-7"}, "invalid -sets -7"},
		{"workers negative", []string{"-workers", "-1"}, "invalid -workers -1"},
		{"figure out of range", []string{"-figure", "7"}, `invalid -figure "7"`},
		{"figure garbage", []string{"-figure", "one"}, `invalid -figure "one"`},
		{"variant bad scheme", []string{"-variants", "XXX"}, `invalid -variants "XXX"`},
		{"variant bad backend", []string{"-variants", "FFD@nope"}, `invalid -variants "FFD@nope"`},
		{"stray argument", []string{"extra"}, `invalid argument "extra"`},
		{"online with figure", []string{"-online", "-figure", "2"}, "drop -figure"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := parseFlags(tc.args, io.Discard)
			if err == nil {
				t.Fatalf("parseFlags(%v): no error", tc.args)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("parseFlags(%v) = %q, want substring %q", tc.args, err, tc.want)
			}
			var ue *usageError
			if !errors.As(err, &ue) {
				t.Errorf("parseFlags(%v) returned %T, want *usageError", tc.args, err)
			}
		})
	}
}

func TestParseFlagsNotes(t *testing.T) {
	cfg, err := parseFlags([]string{"-csv", "-sets", "2"}, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if len(cfg.notes) != 1 || !strings.Contains(cfg.notes[0], "stdout") {
		t.Errorf("-csv without -out: notes = %v, want a stdout note", cfg.notes)
	}

	cfg, err = parseFlags([]string{"-out", "x"}, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if len(cfg.notes) != 1 || !strings.Contains(cfg.notes[0], "-csv") {
		t.Errorf("-out without -csv: notes = %v, want an advisory note", cfg.notes)
	}
}

func TestRunExitCodes(t *testing.T) {
	var out, errb strings.Builder
	if code := run([]string{"-sets", "0"}, &out, &errb, nil); code != exitUsage {
		t.Errorf("usage error: exit %d, want %d (stderr: %s)", code, exitUsage, errb.String())
	}

	out.Reset()
	errb.Reset()
	if code := run([]string{"-figure", "1", "-sets", "2", "-csv"}, &out, &errb, nil); code != exitOK {
		t.Fatalf("small run: exit %d, want %d (stderr: %s)", code, exitOK, errb.String())
	}
	if !strings.Contains(out.String(), "NSU,") {
		t.Errorf("small -csv run produced no CSV header on stdout:\n%s", out.String())
	}
	if !strings.Contains(errb.String(), "-csv without -out") {
		t.Errorf("stdout note missing from stderr:\n%s", errb.String())
	}
}

// TestRunVariantsOverride: -variants replaces the figure's cells and
// the CSV header carries the variant names.
func TestRunVariantsOverride(t *testing.T) {
	var out, errb strings.Builder
	args := []string{"-figure", "6", "-sets", "2", "-csv", "-variants", "CA-TPA,CA-TPA@amcrtb"}
	if code := run(args, &out, &errb, nil); code != exitOK {
		t.Fatalf("variant run: exit %d (stderr: %s)", code, errb.String())
	}
	if !strings.Contains(out.String(), "CA-TPA@amcrtb") {
		t.Errorf("CSV lacks the amcrtb variant column:\n%s", out.String())
	}
	if !strings.Contains(errb.String(), "x 2 variants") {
		t.Errorf("stderr does not report the variant count:\n%s", errb.String())
	}
}

func TestRunHelpExitsZero(t *testing.T) {
	if code := run([]string{"-h"}, io.Discard, io.Discard, nil); code != exitOK {
		t.Errorf("-h: exit %d, want %d", code, exitOK)
	}
}

func TestRunCheckpointResume(t *testing.T) {
	dir := t.TempDir()
	ckptDir := filepath.Join(dir, "ckpt")
	outDir := filepath.Join(dir, "csv")
	args := []string{"-figure", "1", "-sets", "2", "-csv", "-out", outDir, "-checkpoint", ckptDir}

	var errb strings.Builder
	if code := run(args, io.Discard, &errb, nil); code != exitOK {
		t.Fatalf("first run: exit %d (stderr: %s)", code, errb.String())
	}
	ckpt := checkpointFile(ckptDir, "fig1", 2016, 2)
	if _, err := os.Stat(ckpt); err != nil {
		t.Fatalf("checkpoint journal missing: %v", err)
	}
	first, err := os.ReadFile(filepath.Join(outDir, "fig1-a-sched-ratio.csv"))
	if err != nil {
		t.Fatal(err)
	}

	errb.Reset()
	if code := run(args, io.Discard, &errb, nil); code != exitOK {
		t.Fatalf("resumed run: exit %d (stderr: %s)", code, errb.String())
	}
	if !strings.Contains(errb.String(), "resumed from checkpoint") {
		t.Errorf("second run did not resume:\n%s", errb.String())
	}
	second, err := os.ReadFile(filepath.Join(outDir, "fig1-a-sched-ratio.csv"))
	if err != nil {
		t.Fatal(err)
	}
	if string(first) != string(second) {
		t.Error("resumed CSV differs from the original run")
	}
}

// TestRunOnlineCheckpointResume: the online experiment journals and
// resumes through the same CLI path as the static figures, and the
// rerun reproduces the admission-rate CSV byte for byte.
func TestRunOnlineCheckpointResume(t *testing.T) {
	dir := t.TempDir()
	ckptDir := filepath.Join(dir, "ckpt")
	outDir := filepath.Join(dir, "csv")
	args := []string{"-online", "-sets", "4", "-workers", "2", "-csv", "-out", outDir, "-checkpoint", ckptDir}

	var errb strings.Builder
	if code := run(args, io.Discard, &errb, nil); code != exitOK {
		t.Fatalf("first run: exit %d (stderr: %s)", code, errb.String())
	}
	if _, err := os.Stat(checkpointFile(ckptDir, "onl1", 2016, 4)); err != nil {
		t.Fatalf("online checkpoint journal missing: %v", err)
	}
	first, err := os.ReadFile(filepath.Join(outDir, "onl1-a-admission-rate.csv"))
	if err != nil {
		t.Fatal(err)
	}

	errb.Reset()
	if code := run(args, io.Discard, &errb, nil); code != exitOK {
		t.Fatalf("resumed run: exit %d (stderr: %s)", code, errb.String())
	}
	if !strings.Contains(errb.String(), "resumed from checkpoint") {
		t.Errorf("second run did not resume:\n%s", errb.String())
	}
	second, err := os.ReadFile(filepath.Join(outDir, "onl1-a-admission-rate.csv"))
	if err != nil {
		t.Fatal(err)
	}
	if string(first) != string(second) {
		t.Error("resumed online CSV differs from the original run")
	}
}

func TestRunInterruptedPrintsResumeCommand(t *testing.T) {
	// A signal handler whose context is already cancelled models an
	// operator interrupting before the first point completes.
	cancelled := func(ctx context.Context, _ io.Writer) (context.Context, func()) {
		ctx, cancel := context.WithCancel(ctx)
		cancel()
		return ctx, func() {}
	}
	ckptDir := t.TempDir()
	var out, errb strings.Builder
	args := []string{"-figure", "2", "-sets", "2", "-checkpoint", ckptDir}
	if code := run(args, &out, &errb, cancelled); code != exitFatal {
		t.Fatalf("interrupted run: exit %d, want %d", code, exitFatal)
	}
	msg := errb.String()
	if !strings.Contains(msg, "interrupted") {
		t.Errorf("stderr does not mention the interruption:\n%s", msg)
	}
	want := "resume with: mcexp -figure 2 -sets 2 -seed 2016 -checkpoint " + ckptDir
	if !strings.Contains(msg, want) {
		t.Errorf("stderr lacks resume command %q:\n%s", want, msg)
	}
}
