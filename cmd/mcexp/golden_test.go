package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"catpa/internal/obs"
)

// update regenerates the golden files from the current output:
//
//	go test ./cmd/mcexp -run TestGolden -update
var update = flag.Bool("update", false, "rewrite the golden files under testdata/")

// goldenArgs pins every determinism knob: seed and set count fix the
// task-set population, and the worker count fixes the striping (the
// mean metrics are bit-exact only for a fixed worker count).
func goldenArgs(figure, sets, outDir, metricsPath string) []string {
	return []string{
		"-figure", figure, "-sets", sets, "-seed", "2016", "-workers", "2",
		"-csv", "-out", outDir, "-metrics", metricsPath,
	}
}

// TestGoldenFigure1 locks the end-to-end CLI output byte-for-byte: a
// small fixed-seed figure-1 run must reproduce the checked-in CSVs and
// (timing-redacted) metrics snapshot exactly. Any drift in the
// generator, the analysis, the partitioning heuristics, the CSV
// renderer or the metrics plumbing fails this test; run with -update
// to accept an intentional change.
func TestGoldenFigure1(t *testing.T) {
	goldenFigure(t, "fig1", "1", "200")
}

// TestGoldenFigure6 locks the backend-comparison figure the same way:
// CA-TPA, FFD and Hybrid each run atop both the EDF-VD and AMC-rtb
// analysis backends, so this golden additionally pins the AMC-rtb
// response-time analysis and the variant plumbing end to end.
func TestGoldenFigure6(t *testing.T) {
	goldenFigure(t, "fig6", "6", "120")
}

// TestGoldenOnline locks the online pipeline the same way: the CDF/
// arrival stream generation, the incremental Admit/Release replay, the
// time-bucketed aggregation and the online chart rendering must
// reproduce the checked-in admission-rate and utilization-over-time
// curves byte for byte at a fixed seed and worker count.
func TestGoldenOnline(t *testing.T) {
	outDir := t.TempDir()
	metricsPath := filepath.Join(outDir, "metrics.json")
	args := []string{
		"-online", "-sets", "60", "-seed", "2016", "-workers", "2",
		"-csv", "-out", outDir, "-metrics", metricsPath,
	}
	var stdout, stderr bytes.Buffer
	if code := run(args, &stdout, &stderr, nil); code != exitOK {
		t.Fatalf("run exited %d\nstderr:\n%s", code, stderr.String())
	}
	goldenOutputs(t, "onl1", outDir, metricsPath, []string{
		"a-admission-rate.csv",
		"b-shed-rate.csv",
		"c-occupancy.csv",
		"d-util-over-time.csv",
	})
}

func goldenFigure(t *testing.T, name, figure, sets string) {
	t.Helper()
	outDir := t.TempDir()
	metricsPath := filepath.Join(outDir, "metrics.json")
	var stdout, stderr bytes.Buffer
	if code := run(goldenArgs(figure, sets, outDir, metricsPath), &stdout, &stderr, nil); code != exitOK {
		t.Fatalf("run exited %d\nstderr:\n%s", code, stderr.String())
	}
	goldenOutputs(t, name, outDir, metricsPath, []string{
		"a-sched-ratio.csv",
		"b-usys.csv",
		"c-uavg.csv",
		"d-imbalance.csv",
	})
}

// goldenOutputs byte-compares the figure's CSVs and timing-redacted
// metrics snapshot against testdata/.
func goldenOutputs(t *testing.T, name, outDir, metricsPath string, suffixes []string) {
	t.Helper()
	for _, suffix := range suffixes {
		csv := name + "-" + suffix
		got, err := os.ReadFile(filepath.Join(outDir, csv))
		if err != nil {
			t.Fatalf("CLI wrote no %s: %v", csv, err)
		}
		compareGolden(t, csv, got)
	}

	raw, err := os.ReadFile(metricsPath)
	if err != nil {
		t.Fatalf("CLI wrote no metrics snapshot: %v", err)
	}
	compareGolden(t, name+"-metrics.json", redactTimings(t, raw))
}

// redactTimings zeroes the nondeterministic parts of a metrics
// snapshot — per-bucket histogram counts, duration sums and maxima
// depend on machine speed — while keeping everything provably
// deterministic: all counters, the gauges, the bucket bounds and each
// histogram's total observation count (one observation per set and
// stage, regardless of timing).
func redactTimings(t *testing.T, raw []byte) []byte {
	t.Helper()
	var snaps map[string]*obs.Snapshot
	if err := json.Unmarshal(raw, &snaps); err != nil {
		t.Fatalf("metrics snapshot does not parse: %v", err)
	}
	for _, s := range snaps {
		for name, h := range s.Histograms {
			for i := range h.Counts {
				h.Counts[i] = 0
			}
			h.SumNS = 0
			h.MaxNS = 0
			s.Histograms[name] = h
		}
	}
	out, err := json.MarshalIndent(snaps, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	return append(out, '\n')
}

// compareGolden byte-compares got against testdata/<name>, rewriting
// the golden under -update.
func compareGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	golden := filepath.Join("testdata", name)
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, got, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s", golden)
		return
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("missing golden %s (run with -update to create it): %v", golden, err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("%s differs from golden (rerun with -update if intentional)\n got:\n%s\nwant:\n%s",
			name, clip(got), clip(want))
	}
}

// clip bounds a diff dump to its first lines.
func clip(b []byte) string {
	lines := strings.SplitN(string(b), "\n", 12)
	if len(lines) == 12 {
		lines[11] = fmt.Sprintf("... (%d bytes total)", len(b))
	}
	return strings.Join(lines, "\n")
}
