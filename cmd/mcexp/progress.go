package main

import (
	"fmt"
	"io"
	"time"

	"catpa/internal/runner"
)

// startProgress launches the periodic throughput reporter for one
// figure: every interval it prints the cumulative set count (which
// includes sets restored from a resumed checkpoint), the rate since
// the previous tick and the ETA to total sets. The returned stop
// function halts the reporter and waits for it to exit; with a zero
// interval no goroutine starts and stop is a no-op.
func startProgress(stderr io.Writer, name string, met *runner.Metrics, total int64, every time.Duration) func() {
	if every <= 0 {
		return func() {}
	}
	quit := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		tick := time.NewTicker(every)
		defer tick.Stop()
		lastN := met.SetsDone()
		lastT := time.Now()
		for {
			select {
			case <-quit:
				return
			case now := <-tick.C:
				n := met.SetsDone()
				rate := float64(n-lastN) / now.Sub(lastT).Seconds()
				fmt.Fprintf(stderr, "mcexp: %s: %d/%d sets (%.1f%%), %.0f sets/s, ETA %s\n",
					name, n, total, 100*float64(n)/float64(total), rate, eta(total-n, rate))
				lastN, lastT = n, now
			}
		}
	}()
	return func() {
		close(quit)
		<-done
	}
}

// eta renders the time to finish remaining sets at rate sets/sec, or
// "?" while the rate is not yet positive (first tick of a cold run).
func eta(remaining int64, rate float64) string {
	if rate <= 0 {
		return "?"
	}
	d := time.Duration(float64(remaining) / rate * float64(time.Second))
	return d.Round(time.Second).String()
}
