// Command mcexp regenerates the evaluation figures of Han et al.
// (ICPP 2016): five partitioning schemes compared on schedulability
// ratio, system utilization, average core utilization and workload
// imbalance, across the five parameter sweeps of Figures 1-5, plus a
// sixth figure comparing the EDF-VD and AMC-rtb analysis backends on
// dual-criticality workloads.
//
// Usage:
//
//	mcexp -figure 1                         # one figure at paper scale
//	mcexp -figure all -plot                 # all figures with ASCII plots
//	mcexp -figure 4 -csv -out results/      # CSV files per metric
//	mcexp -figure 2 -checkpoint ckpt/       # journal progress, resumable
//	mcexp -figure 6                         # EDF-VD vs AMC-rtb backends
//	mcexp -figure 1 -variants CA-TPA,FFD@amcrtb
//	                                        # custom (scheme, backend) cells
//	mcexp -online -sets 200 -csv            # online arrival-driven workload
//
// The default population matches the paper's 50,000 task sets per
// point; -sets trades accuracy for time (the ratios carry 95%
// confidence intervals of about ±1.96*sqrt(p(1-p)/sets)).
//
// With -checkpoint, every completed sweep point is journaled to
// <dir>/<figure>-seed<seed>-sets<sets>.ckpt and a rerun of the same
// invocation resumes where it left off, byte-identical to an
// uninterrupted run. The first SIGINT or SIGTERM drains the in-flight
// point, flushes the checkpoint, prints the partial results and a
// resume command; a second signal aborts immediately.
//
// Long runs can be watched: -progress 10s prints a throughput line
// (sets/sec and ETA) to stderr every interval, -metrics out.json
// writes the final metrics snapshot (per-figure counters, stage
// timing histograms) as JSON, and -pprof localhost:6060 serves
// net/http/pprof for live profiling. Resumed runs report cumulative
// totals: the metrics snapshot rides the checkpoint journal.
//
// Exit codes:
//
//	0  all requested figures completed
//	1  usage error (bad flag or argument)
//	2  completed, but one or more task sets were quarantined after a
//	   panic (each is reported on stderr with its reproduction triple)
//	3  fatal error, or interrupted before completion
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	_ "net/http/pprof"
	"os"
	"os/signal"
	"path/filepath"
	"strconv"
	"strings"
	"syscall"
	"time"

	"catpa"
	"catpa/internal/experiments"
	"catpa/internal/obs"
	"catpa/internal/runner"
)

const (
	exitOK         = 0
	exitUsage      = 1
	exitQuarantine = 2
	exitFatal      = 3
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr, installSignalHandler))
}

// config is the validated result of flag parsing.
type config struct {
	figures    []int
	online     bool
	variants   []experiments.Variant
	sets       int
	seed       int64
	workers    int
	plot       bool
	csv        bool
	out        string
	checkpoint string
	progress   time.Duration
	metrics    string
	pprofAddr  string
	// notes are advisory messages surfaced on stderr before the run
	// (e.g. -csv without -out goes to stdout).
	notes []string
}

// usageError is a structured flag-validation failure: which flag, what
// value it had, and what would be accepted.
type usageError struct {
	flag   string
	value  string
	detail string
}

func (e *usageError) Error() string {
	return fmt.Sprintf("invalid %s %s: %s", e.flag, e.value, e.detail)
}

// parseFlags validates the command line up front, before any work
// starts, so a typo in a long overnight invocation fails in
// milliseconds rather than after the first figure.
func parseFlags(args []string, stderr io.Writer) (*config, error) {
	fs := flag.NewFlagSet("mcexp", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		figure     = fs.String("figure", "all", "figure number 1..6 or 'all'")
		online     = fs.Bool("online", false, "run the online arrival-driven experiment instead of the static figures")
		variants   = fs.String("variants", "", "comma-separated scheme[@backend] cells overriding the figure's own (e.g. CA-TPA,FFD@amcrtb)")
		sets       = fs.Int("sets", 50000, "task sets per data point")
		seed       = fs.Int64("seed", 2016, "base seed")
		workers    = fs.Int("workers", 0, "worker goroutines (0 = GOMAXPROCS)")
		plot       = fs.Bool("plot", false, "render ASCII plots in addition to tables")
		csv        = fs.Bool("csv", false, "emit CSV instead of tables")
		out        = fs.String("out", "", "directory for CSV output (default stdout)")
		checkpoint = fs.String("checkpoint", "", "directory for resumable per-figure checkpoint journals")
		progress   = fs.Duration("progress", 0, "print a sets/sec + ETA line to stderr every interval (0 = off)")
		metrics    = fs.String("metrics", "", "write the final metrics snapshot (JSON, keyed by figure) to this file")
		pprofAddr  = fs.String("pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060)")
	)
	if err := fs.Parse(args); err != nil {
		return nil, err
	}
	if fs.NArg() > 0 {
		return nil, &usageError{"argument", strconv.Quote(fs.Arg(0)), "mcexp takes flags only"}
	}
	cfg := &config{
		sets:       *sets,
		seed:       *seed,
		workers:    *workers,
		plot:       *plot,
		csv:        *csv,
		out:        *out,
		checkpoint: *checkpoint,
		progress:   *progress,
		metrics:    *metrics,
		pprofAddr:  *pprofAddr,
	}
	cfg.online = *online
	switch {
	case cfg.online:
		// The online experiment is its own sweep; selecting a static
		// figure alongside it would be ambiguous about what to run.
		figureSet := false
		fs.Visit(func(f *flag.Flag) {
			if f.Name == "figure" {
				figureSet = true
			}
		})
		if figureSet {
			return nil, &usageError{"-figure", strconv.Quote(*figure), "-online runs its own experiment; drop -figure"}
		}
	case *figure == "all":
		cfg.figures = experiments.Figures
	default:
		n, err := strconv.Atoi(*figure)
		if err != nil || n < 1 || n > 6 {
			return nil, &usageError{"-figure", strconv.Quote(*figure), "want a figure number 1..6 or 'all'"}
		}
		cfg.figures = []int{n}
	}
	if *variants != "" {
		for _, s := range strings.Split(*variants, ",") {
			v, err := experiments.ParseVariant(strings.TrimSpace(s))
			if err != nil {
				return nil, &usageError{"-variants", strconv.Quote(s), err.Error()}
			}
			cfg.variants = append(cfg.variants, v)
		}
	}
	if cfg.sets < 1 {
		return nil, &usageError{"-sets", strconv.Itoa(cfg.sets), "need at least 1 task set per data point"}
	}
	if cfg.workers < 0 {
		return nil, &usageError{"-workers", strconv.Itoa(cfg.workers), "want 0 (use GOMAXPROCS) or a positive worker count"}
	}
	if cfg.progress < 0 {
		return nil, &usageError{"-progress", cfg.progress.String(), "want 0 (off) or a positive interval like 10s"}
	}
	if cfg.csv && cfg.out == "" {
		cfg.notes = append(cfg.notes, "-csv without -out: writing CSV to stdout")
	}
	if cfg.out != "" && !cfg.csv {
		cfg.notes = append(cfg.notes, "-out has no effect without -csv; printing tables to stdout")
	}
	return cfg, nil
}

// installSignalHandler wires SIGINT/SIGTERM to graceful cancellation:
// the first signal cancels ctx (the runner drains the in-flight point
// and flushes the checkpoint), a second aborts immediately with the
// fatal exit code. Returns the derived context and a release function.
func installSignalHandler(ctx context.Context, stderr io.Writer) (context.Context, func()) {
	ctx, cancel := context.WithCancel(ctx)
	sigc := make(chan os.Signal, 2)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	go func() {
		s := <-sigc
		fmt.Fprintf(stderr, "\nmcexp: %v: draining the in-flight point and flushing the checkpoint (signal again to abort now)\n", s)
		cancel()
		<-sigc
		fmt.Fprintln(stderr, "mcexp: aborted")
		os.Exit(exitFatal)
	}()
	return ctx, func() { signal.Stop(sigc); cancel() }
}

// run is the testable entry point; it returns the process exit code.
// signals is nil in tests (no handler) and installSignalHandler in
// production.
func run(args []string, stdout, stderr io.Writer, signals func(context.Context, io.Writer) (context.Context, func())) int {
	cfg, err := parseFlags(args, stderr)
	if err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return exitOK
		}
		fmt.Fprintln(stderr, "mcexp:", err)
		return exitUsage
	}
	for _, note := range cfg.notes {
		fmt.Fprintln(stderr, "mcexp: note:", note)
	}

	ctx := context.Background()
	if signals != nil {
		var release func()
		ctx, release = signals(ctx, stderr)
		defer release()
	}

	if cfg.pprofAddr != "" {
		ln, err := net.Listen("tcp", cfg.pprofAddr)
		if err != nil {
			fmt.Fprintln(stderr, "mcexp: -pprof:", err)
			return exitFatal
		}
		defer ln.Close()
		fmt.Fprintf(stderr, "mcexp: pprof listening on http://%s/debug/pprof/\n", ln.Addr())
		go func() { _ = http.Serve(ln, nil) }()
	}

	// snaps collects the final per-figure metrics snapshot for
	// -metrics; it is written on every exit path once a figure ran.
	snaps := make(map[string]*obs.Snapshot)
	code := runFigures(ctx, cfg, stdout, stderr, snaps)
	if cfg.metrics != "" && len(snaps) > 0 {
		if err := writeMetrics(cfg.metrics, snaps, stderr); err != nil {
			fmt.Fprintln(stderr, "mcexp:", err)
			if code == exitOK {
				code = exitFatal
			}
		}
	}
	return code
}

// figureJob is one sweep to execute: the pre-built sweep plus the flag
// spelling that selects it again (for resume and reproduction hints).
type figureJob struct {
	sw  *experiments.Sweep
	sel string
}

// buildJobs materializes the requested sweeps — the six static figures
// or the online experiment — applying the shared overrides.
func buildJobs(cfg *config) []figureJob {
	var jobs []figureJob
	if cfg.online {
		jobs = append(jobs, figureJob{catpa.OnlineFigure(cfg.sets, cfg.seed), "-online"})
	} else {
		for _, n := range cfg.figures {
			jobs = append(jobs, figureJob{catpa.Figure(n, cfg.sets, cfg.seed), fmt.Sprintf("-figure %d", n)})
		}
	}
	for _, jb := range jobs {
		jb.sw.Workers = cfg.workers
		if len(cfg.variants) > 0 {
			jb.sw.Variants = append([]experiments.Variant(nil), cfg.variants...)
		}
	}
	return jobs
}

// runFigures executes every requested sweep, filling snaps with one
// metrics snapshot per completed-or-interrupted figure, and returns
// the process exit code.
func runFigures(ctx context.Context, cfg *config, stdout, stderr io.Writer, snaps map[string]*obs.Snapshot) int {
	quarantined := 0
	for _, jb := range buildJobs(cfg) {
		sw := jb.sw

		met := runner.NewMetricsFor(obs.NewRegistry(), sw)
		opts := &runner.Options{Metrics: met}
		if cfg.checkpoint != "" {
			if err := os.MkdirAll(cfg.checkpoint, 0o755); err != nil {
				fmt.Fprintln(stderr, "mcexp:", err)
				return exitFatal
			}
			opts.CheckpointPath = checkpointFile(cfg.checkpoint, sw.Name, cfg.seed, cfg.sets)
		}

		total := int64(cfg.sets) * int64(len(sw.Values))
		stop := startProgress(stderr, sw.Name, met, total, cfg.progress)
		start := time.Now()
		rep, err := runner.Run(ctx, sw, opts)
		stop()
		if rep == nil {
			fmt.Fprintln(stderr, "mcexp:", err)
			return exitFatal
		}
		snaps[sw.Name] = met.Snapshot()
		elapsed := time.Since(start).Round(time.Millisecond)
		reportQuarantines(stderr, jb.sel, cfg, rep.Quarantined)
		quarantined += len(rep.Quarantined)

		if err != nil {
			done := len(rep.Completed())
			if rep.Interrupted {
				fmt.Fprintf(stderr, "mcexp: %s: interrupted after %d/%d points (%v); completed points follow\n",
					sw.Name, done, len(sw.Values), elapsed)
			} else {
				fmt.Fprintf(stderr, "mcexp: %s: %v after %d/%d points; completed points follow\n",
					sw.Name, err, done, len(sw.Values))
			}
			if done > 0 {
				if err := emit(cfg, sw.Name, rep.PartialResult(), stdout, stderr); err != nil {
					fmt.Fprintln(stderr, "mcexp:", err)
				}
			}
			fmt.Fprintln(stderr, "mcexp:", resumeHint(cfg, jb.sel))
			return exitFatal
		}

		fmt.Fprintf(stderr, "%s: %d sets/point x %d points x %d variants in %v%s\n",
			sw.Name, cfg.sets, len(sw.Values), len(sw.ActiveVariants()), elapsed, resumedNote(rep.Resumed))
		if err := emit(cfg, sw.Name, rep.Result, stdout, stderr); err != nil {
			fmt.Fprintln(stderr, "mcexp:", err)
			return exitFatal
		}
	}
	if quarantined > 0 {
		fmt.Fprintf(stderr, "mcexp: %d task set(s) quarantined; results count them as unschedulable for every scheme\n", quarantined)
		return exitQuarantine
	}
	return exitOK
}

// writeMetrics persists the per-figure snapshots as indented JSON
// (map keys sort, so the output is deterministic given equal counts).
//
//mc:deterministic metrics files diff across runs
func writeMetrics(path string, snaps map[string]*obs.Snapshot, stderr io.Writer) error {
	data, err := json.MarshalIndent(snaps, "", "  ")
	if err != nil {
		return err
	}
	if err := runner.WriteFileAtomic(path, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Fprintf(stderr, "wrote %s\n", path)
	return nil
}

// emit renders one figure's charts: CSV files (atomic write), CSV to
// stdout, or tables with optional ASCII plots.
//
//mc:deterministic CSV/table output diffs across runs
func emit(cfg *config, name string, res *experiments.Result, stdout, stderr io.Writer) error {
	for _, ch := range res.Charts() {
		switch {
		case cfg.csv && cfg.out != "":
			if err := os.MkdirAll(cfg.out, 0o755); err != nil {
				return err
			}
			path := filepath.Join(cfg.out, fmt.Sprintf("%s-%s.csv", name, slug(ch.Title)))
			if err := runner.WriteFileAtomic(path, []byte(ch.CSV()), 0o644); err != nil {
				return err
			}
			fmt.Fprintf(stderr, "wrote %s\n", path)
		case cfg.csv:
			fmt.Fprint(stdout, ch.CSV())
			fmt.Fprintln(stdout)
		default:
			fmt.Fprint(stdout, ch.Table())
			if cfg.plot {
				fmt.Fprint(stdout, ch.Plot(14))
			}
			fmt.Fprintln(stdout)
		}
	}
	return nil
}

// checkpointFile names the journal for one (figure, seed, sets) run.
// Seed and sets are part of the name so changing either starts a fresh
// journal instead of hitting the identity check.
func checkpointFile(dir, name string, seed int64, sets int) string {
	return filepath.Join(dir, fmt.Sprintf("%s-seed%d-sets%d.ckpt", name, seed, sets))
}

// resumeHint reconstructs the command line that resumes an interrupted
// run from its checkpoint. sel is the flag spelling selecting the
// sweep ("-figure 3" or "-online").
func resumeHint(cfg *config, sel string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "resume with: mcexp %s -sets %d -seed %d", sel, cfg.sets, cfg.seed)
	if cfg.workers != 0 {
		fmt.Fprintf(&b, " -workers %d", cfg.workers)
	}
	if len(cfg.variants) > 0 {
		names := make([]string, len(cfg.variants))
		for i, v := range cfg.variants {
			names[i] = v.String()
		}
		fmt.Fprintf(&b, " -variants %s", strings.Join(names, ","))
	}
	if cfg.checkpoint != "" {
		fmt.Fprintf(&b, " -checkpoint %s", cfg.checkpoint)
	} else {
		b.WriteString(" -checkpoint <dir>   (add -checkpoint to make the next run resumable)")
	}
	if cfg.csv {
		b.WriteString(" -csv")
	}
	if cfg.out != "" {
		fmt.Fprintf(&b, " -out %s", cfg.out)
	}
	return b.String()
}

// resumedNote annotates the timing line when points were loaded from a
// checkpoint instead of recomputed.
func resumedNote(resumed []int) string {
	if len(resumed) == 0 {
		return ""
	}
	return fmt.Sprintf(" (%d point(s) resumed from checkpoint)", len(resumed))
}

// reportQuarantines prints each quarantined task set with the exact
// triple that reproduces it.
func reportQuarantines(stderr io.Writer, sel string, cfg *config, qs []experiments.Quarantine) {
	for _, q := range qs {
		fmt.Fprintf(stderr, "mcexp: quarantined task set (%s); reproduce with: mcexp %s -sets %d -seed %d\n",
			q, sel, cfg.sets, cfg.seed)
	}
}

// slug extracts a short file-name fragment from a chart title. The
// online metric names are matched before the positional static ones so
// both chart families get descriptive file names.
func slug(title string) string {
	switch {
	case strings.Contains(title, "admission rate"):
		return "a-admission-rate"
	case strings.Contains(title, "shed rate"):
		return "b-shed-rate"
	case strings.Contains(title, "occupancy"):
		return "c-occupancy"
	case strings.Contains(title, "utilization over time"):
		return "d-util-over-time"
	case strings.Contains(title, "(a)"):
		return "a-sched-ratio"
	case strings.Contains(title, "(b)"):
		return "b-usys"
	case strings.Contains(title, "(c)"):
		return "c-uavg"
	case strings.Contains(title, "(d)"):
		return "d-imbalance"
	}
	return "metric"
}
