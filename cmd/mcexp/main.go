// Command mcexp regenerates the evaluation figures of Han et al.
// (ICPP 2016): five partitioning schemes compared on schedulability
// ratio, system utilization, average core utilization and workload
// imbalance, across the five parameter sweeps of Figures 1-5.
//
// Usage:
//
//	mcexp -figure 1                         # one figure at paper scale
//	mcexp -figure all -plot                 # all figures with ASCII plots
//	mcexp -figure 4 -csv -out results/      # CSV files per metric
//
// The default population matches the paper's 50,000 task sets per
// point; -sets trades accuracy for time (the ratios carry 95%
// confidence intervals of about ±1.96*sqrt(p(1-p)/sets)).
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"catpa"
	"catpa/internal/experiments"
)

func main() {
	var (
		figure  = flag.String("figure", "all", "figure number 1..5 or 'all'")
		sets    = flag.Int("sets", 50000, "task sets per data point")
		seed    = flag.Int64("seed", 2016, "base seed")
		workers = flag.Int("workers", 0, "worker goroutines (0 = GOMAXPROCS)")
		plot    = flag.Bool("plot", false, "render ASCII plots in addition to tables")
		csv     = flag.Bool("csv", false, "emit CSV instead of tables")
		out     = flag.String("out", "", "directory for CSV output (default stdout)")
	)
	flag.Parse()

	var figs []int
	if *figure == "all" {
		figs = experiments.Figures
	} else {
		var n int
		if _, err := fmt.Sscanf(*figure, "%d", &n); err != nil || n < 1 || n > 5 {
			fatal(fmt.Errorf("invalid -figure %q", *figure))
		}
		figs = []int{n}
	}

	for _, n := range figs {
		sw := catpa.Figure(n, *sets, *seed)
		sw.Workers = *workers
		start := time.Now()
		res := sw.Run()
		fmt.Fprintf(os.Stderr, "%s: %d sets/point x %d points x 5 schemes in %v\n",
			sw.Name, *sets, len(sw.Values), time.Since(start).Round(time.Millisecond))
		for _, ch := range res.Charts() {
			switch {
			case *csv && *out != "":
				if err := os.MkdirAll(*out, 0o755); err != nil {
					fatal(err)
				}
				name := filepath.Join(*out, fmt.Sprintf("%s-%s.csv", sw.Name, slug(ch.Title)))
				if err := os.WriteFile(name, []byte(ch.CSV()), 0o644); err != nil {
					fatal(err)
				}
				fmt.Fprintf(os.Stderr, "wrote %s\n", name)
			case *csv:
				fmt.Print(ch.CSV())
				fmt.Println()
			default:
				fmt.Print(ch.Table())
				if *plot {
					fmt.Print(ch.Plot(14))
				}
				fmt.Println()
			}
		}
	}
}

// slug extracts a short file-name fragment from a chart title.
func slug(title string) string {
	switch {
	case contains(title, "(a)"):
		return "a-sched-ratio"
	case contains(title, "(b)"):
		return "b-usys"
	case contains(title, "(c)"):
		return "c-uavg"
	case contains(title, "(d)"):
		return "d-imbalance"
	}
	return "metric"
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "mcexp:", err)
	os.Exit(1)
}
