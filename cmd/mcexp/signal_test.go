package main

import (
	"bytes"
	"errors"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

// The two-stage signal contract is exercised at the process level: the
// helper re-executes this test binary, which TestMain routes into
// run(...) with the real installSignalHandler, so the SIGINT path —
// signal goroutine, context cancellation, checkpoint flush, resume
// hint, second-signal abort — runs exactly as shipped.

const (
	helperEnv     = "MCEXP_HELPER_PROCESS"
	helperArgsEnv = "MCEXP_HELPER_ARGS"
	// argSep joins helper args inside the env var; NUL is rejected by
	// exec, so the ASCII unit separator stands in.
	argSep = "\x1f"
	// helperSets sizes the sweep: big enough that the run is still
	// mid-flight when the journal poll returns (the whole figure takes
	// tens of seconds under -race), small enough that draining the one
	// in-flight point stays quick.
	helperSets = "2000"
)

func TestMain(m *testing.M) {
	if os.Getenv(helperEnv) == "1" {
		args := strings.Split(os.Getenv(helperArgsEnv), argSep)
		os.Exit(run(args, os.Stdout, os.Stderr, installSignalHandler))
	}
	os.Exit(m.Run())
}

// lockedBuffer lets the test poll the helper's stderr while exec's
// copier goroutine is still appending to it.
type lockedBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *lockedBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *lockedBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// startHelper launches this test binary as an mcexp process running a
// sweep big enough to stay alive for several seconds, and waits until
// its first checkpoint flush proves it is mid-run.
func startHelper(t *testing.T, ckptDir string, args ...string) (*exec.Cmd, *lockedBuffer, *lockedBuffer) {
	t.Helper()
	cmd := exec.Command(os.Args[0])
	cmd.Env = append(os.Environ(),
		helperEnv+"=1",
		helperArgsEnv+"="+strings.Join(args, argSep),
	)
	var stdout, stderr lockedBuffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Start(); err != nil {
		t.Fatalf("start helper: %v", err)
	}
	journal := checkpointFile(ckptDir, "fig2", 2016, 2000)
	deadline := time.Now().Add(30 * time.Second)
	for {
		if st, err := os.Stat(journal); err == nil && st.Size() > 0 {
			return cmd, &stdout, &stderr
		}
		if time.Now().After(deadline) {
			_ = cmd.Process.Kill()
			t.Fatalf("helper produced no checkpoint within 30s (stderr: %s)", stderr.String())
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func exitCode(t *testing.T, cmd *exec.Cmd) int {
	t.Helper()
	err := cmd.Wait()
	if err == nil {
		return 0
	}
	var ee *exec.ExitError
	if !errors.As(err, &ee) {
		t.Fatalf("helper wait: %v", err)
	}
	return ee.ExitCode()
}

func TestProcessSingleSignalDrainsAndHintsResume(t *testing.T) {
	if testing.Short() {
		t.Skip("process-level signal test")
	}
	dir := t.TempDir()
	ckptDir := filepath.Join(dir, "ckpt")
	outDir := filepath.Join(dir, "csv")
	cmd, _, stderr := startHelper(t, ckptDir,
		"-figure", "2", "-sets", helperSets, "-csv", "-out", outDir, "-checkpoint", ckptDir)

	if err := cmd.Process.Signal(os.Interrupt); err != nil {
		t.Fatalf("SIGINT: %v", err)
	}
	code := exitCode(t, cmd)
	msg := stderr.String()
	if code != exitFatal {
		t.Fatalf("exit code %d, want %d (stderr: %s)", code, exitFatal, msg)
	}
	if !strings.Contains(msg, "draining the in-flight point") {
		t.Errorf("first signal not acknowledged:\n%s", msg)
	}
	if !strings.Contains(msg, "interrupted") {
		t.Errorf("no interruption notice:\n%s", msg)
	}
	if !strings.Contains(msg, "resume with: mcexp -figure 2 -sets "+helperSets+" -seed 2016 -checkpoint "+ckptDir) {
		t.Errorf("no resume hint:\n%s", msg)
	}
	if strings.Contains(msg, "aborted") {
		t.Errorf("single signal must drain, not abort:\n%s", msg)
	}
	// The graceful path flushed partial results: the journal survives
	// and the partial CSVs were written.
	if st, err := os.Stat(checkpointFile(ckptDir, "fig2", 2016, 2000)); err != nil || st.Size() == 0 {
		t.Errorf("checkpoint journal missing after drain: %v", err)
	}
	csvs, err := filepath.Glob(filepath.Join(outDir, "fig2-*.csv"))
	if err != nil || len(csvs) == 0 {
		t.Errorf("no partial CSVs after drain (err %v)", err)
	}
}

func TestProcessSecondSignalAbortsImmediately(t *testing.T) {
	if testing.Short() {
		t.Skip("process-level signal test")
	}
	ckptDir := filepath.Join(t.TempDir(), "ckpt")
	cmd, _, stderr := startHelper(t, ckptDir,
		"-figure", "2", "-sets", helperSets, "-checkpoint", ckptDir)

	if err := cmd.Process.Signal(os.Interrupt); err != nil {
		t.Fatalf("first SIGINT: %v", err)
	}
	// The second signal must land after the handler consumed the
	// first: wait for the drain acknowledgement on stderr.
	deadline := time.Now().Add(10 * time.Second)
	for !strings.Contains(stderr.String(), "draining the in-flight point") {
		if time.Now().After(deadline) {
			_ = cmd.Process.Kill()
			t.Fatalf("no drain acknowledgement (stderr: %s)", stderr.String())
		}
		time.Sleep(time.Millisecond)
	}
	if err := cmd.Process.Signal(os.Interrupt); err != nil {
		t.Fatalf("second SIGINT: %v", err)
	}
	code := exitCode(t, cmd)
	msg := stderr.String()
	if code != exitFatal {
		t.Errorf("exit code %d, want %d", code, exitFatal)
	}
	if !strings.Contains(msg, "aborted") {
		t.Errorf("second signal did not abort:\n%s", msg)
	}
}
