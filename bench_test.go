package catpa_test

// Benchmark harness regenerating the paper's evaluation (one benchmark
// per figure) plus micro-benchmarks of the building blocks and the
// ablation study of DESIGN.md section 6.
//
//	go test -bench=. -benchmem
//
// The figure benchmarks run a reduced population per iteration and
// report the paper's headline comparison (CA-TPA vs FFD schedulability
// ratio at the sweep's midpoint) as custom metrics, so `go test
// -bench=BenchmarkFig` both times the harness and regenerates the
// figures' shape. For publication-quality curves use cmd/mcexp with
// -sets 50000.

import (
	"fmt"
	"math"
	"testing"

	"catpa"
)

// benchSets is the population per figure-bench iteration; small enough
// to keep one iteration under a second, large enough that the ratio
// ordering is stable.
const benchSets = 60

// variantIndex resolves a variant's position in a sweep's variant list
// by canonical name ("FFD", "CA-TPA@amcrtb"), so benchmarks never
// hard-code presentation-order indices.
func variantIndex(b *testing.B, variants []catpa.Variant, name string) int {
	b.Helper()
	for vi, v := range variants {
		if v.String() == name {
			return vi
		}
	}
	b.Fatalf("variant %q not in %v", name, variants)
	return -1
}

// figureBench runs one reduced figure sweep per iteration and reports
// the midpoint schedulability ratios of CA-TPA and FFD.
func figureBench(b *testing.B, fig int) {
	b.ReportAllocs()
	var catpaRatio, ffdRatio float64
	for i := 0; i < b.N; i++ {
		sw := catpa.Figure(fig, benchSets, 2016)
		sw.Workers = 1
		variants := sw.ActiveVariants()
		res := sw.Run()
		mid := len(sw.Values) / 2
		ffdRatio = res.Value(mid, variantIndex(b, variants, "FFD"), catpa.SchedRatio)
		catpaRatio = res.Value(mid, variantIndex(b, variants, "CA-TPA"), catpa.SchedRatio)
	}
	b.ReportMetric(catpaRatio, "catpa_ratio")
	b.ReportMetric(ffdRatio, "ffd_ratio")
}

// BenchmarkFig1 regenerates Fig. 1 (varying NSU).
func BenchmarkFig1_NSU(b *testing.B) { figureBench(b, 1) }

// BenchmarkFig2 regenerates Fig. 2 (varying IFC).
func BenchmarkFig2_IFC(b *testing.B) { figureBench(b, 2) }

// BenchmarkFig3 regenerates Fig. 3 (varying alpha).
func BenchmarkFig3_Alpha(b *testing.B) { figureBench(b, 3) }

// BenchmarkFig4 regenerates Fig. 4 (varying M).
func BenchmarkFig4_Cores(b *testing.B) { figureBench(b, 4) }

// BenchmarkFig5 regenerates Fig. 5 (varying K).
func BenchmarkFig5_Levels(b *testing.B) { figureBench(b, 5) }

// benchPopulation pre-generates a default-parameter population near
// the schedulability boundary for per-scheme and ablation benchmarks.
func benchPopulation(n int) []*catpa.TaskSet {
	cfg := catpa.DefaultGenConfig()
	sets := make([]*catpa.TaskSet, n)
	for i := range sets {
		sets[i] = catpa.GenerateTaskSet(&cfg, 2016, i)
	}
	return sets
}

// BenchmarkPartition times one partitioning run per iteration for each
// scheme at the paper's default point (M=8, K=4, NSU=0.6) and reports
// the scheme's acceptance ratio over the cycled population. It uses
// the reusable Partitioner fast path (steady state: 0 allocs/op); see
// BenchmarkPartitionLegacy for the one-shot entry point.
func BenchmarkPartition(b *testing.B) {
	sets := benchPopulation(200)
	for _, s := range catpa.Schemes {
		b.Run(s.String(), func(b *testing.B) {
			b.ReportAllocs()
			p := catpa.NewPartitioner(8, 4)
			feasible := 0
			for i := 0; i < b.N; i++ {
				ts := sets[i%len(sets)]
				if p.Evaluate(ts, s, nil).Feasible {
					feasible++
				}
			}
			b.ReportMetric(float64(feasible)/float64(b.N), "sched_ratio")
		})
	}
}

// BenchmarkPartitionLegacy times the allocating one-shot Partition
// call (the pre-fast-path baseline, kept for comparison).
func BenchmarkPartitionLegacy(b *testing.B) {
	sets := benchPopulation(200)
	for _, s := range catpa.Schemes {
		b.Run(s.String(), func(b *testing.B) {
			b.ReportAllocs()
			feasible := 0
			for i := 0; i < b.N; i++ {
				ts := sets[i%len(sets)]
				if catpa.Partition(ts, 8, 4, s, nil).Feasible {
					feasible++
				}
			}
			b.ReportMetric(float64(feasible)/float64(b.N), "sched_ratio")
		})
	}
}

// BenchmarkSweepThroughput measures end-to-end sweep throughput in
// task sets per second (generate + partition by all five schemes +
// aggregate, single worker): the figure-of-merit for paper-scale
// 50,000-set populations.
func BenchmarkSweepThroughput(b *testing.B) {
	b.ReportAllocs()
	const setsPerIter = 200
	for i := 0; i < b.N; i++ {
		sw := catpa.Figure(1, setsPerIter, 2016)
		sw.Workers = 1
		sw.Values = sw.Values[3:4] // single mid-sweep point (NSU near the boundary)
		sw.Run()
	}
	b.ReportMetric(float64(setsPerIter)*float64(b.N)/b.Elapsed().Seconds(), "sets/s")
}

// BenchmarkCATPAScaling verifies the O((M+N)*N) complexity claim of
// Section III: doubling N roughly quadruples the per-partition cost.
func BenchmarkCATPAScaling(b *testing.B) {
	for _, n := range []int{50, 100, 200, 400} {
		cfg := catpa.DefaultGenConfig()
		cfg.N = catpa.IntRange{Lo: n, Hi: n}
		cfg.NSU = 0.4 // below the boundary so every run completes
		ts := catpa.GenerateTaskSet(&cfg, 1, 0)
		b.Run(fmt.Sprintf("N=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				catpa.Partition(ts, 8, 4, catpa.CATPA, nil)
			}
		})
	}
}

// BenchmarkAnalyze times the Theorem-1 analysis of a single core
// subset (the inner loop of every heuristic).
func BenchmarkAnalyze(b *testing.B) {
	cfg := catpa.DefaultGenConfig()
	cfg.N = catpa.IntRange{Lo: 15, Hi: 15}
	cfg.M = 1
	cfg.NSU = 0.5
	ts := catpa.GenerateTaskSet(&cfg, 1, 0)
	m := catpa.NewUtilMatrix(4)
	for i := range ts.Tasks {
		m.Add(&ts.Tasks[i])
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		catpa.CoreUtil(m)
	}
}

// BenchmarkTaskGen times workload generation at the default point.
func BenchmarkTaskGen(b *testing.B) {
	cfg := catpa.DefaultGenConfig()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		catpa.GenerateTaskSet(&cfg, 1, i)
	}
}

// BenchmarkSimulateCore times the event-driven runtime under the
// adversarial model on a near-capacity dual-criticality subset.
func BenchmarkSimulateCore(b *testing.B) {
	ts := catpa.NewTaskSet(
		catpa.Task{Period: 20, Crit: 2, WCET: []float64{1.5, 5}},
		catpa.Task{Period: 50, Crit: 2, WCET: []float64{3, 9}},
		catpa.Task{Period: 30, Crit: 1, WCET: []float64{7}},
		catpa.Task{Period: 100, Crit: 1, WCET: []float64{20}},
	)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		st := catpa.SimulateCore(catpa.CoreConfig{
			Tasks:   ts.Tasks,
			K:       2,
			Horizon: 10000,
			Model:   catpa.WorstCaseModel{},
		})
		if st.Missed != 0 {
			b.Fatal("unexpected misses")
		}
	}
}

// ablationBench measures the schedulability ratio of a CA-TPA variant
// over the shared boundary population, reporting the delta against
// full CA-TPA. One iteration = one partitioning run (cycled).
func ablationBench(b *testing.B, opts *catpa.PartitionOptions) {
	sets := benchPopulation(200)
	full, variant := 0, 0
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		ts := sets[i%len(sets)]
		if catpa.Partition(ts, 8, 4, catpa.CATPA, nil).Feasible {
			full++
		}
		if catpa.Partition(ts, 8, 4, catpa.CATPA, opts).Feasible {
			variant++
		}
	}
	b.ReportMetric(float64(variant)/float64(b.N), "variant_ratio")
	b.ReportMetric(float64(full)/float64(b.N), "full_ratio")
}

// BenchmarkAblationOrdering replaces the utilization-contribution
// ordering with the classical max-utilization ordering.
func BenchmarkAblationOrdering(b *testing.B) {
	ablationBench(b, &catpa.PartitionOptions{Order: catpa.MaxUtilOrder})
}

// BenchmarkAblationNoProbe replaces the minimum-increment probe with
// first-feasible placement.
func BenchmarkAblationNoProbe(b *testing.B) {
	ablationBench(b, &catpa.PartitionOptions{NoProbe: true})
}

// BenchmarkAblationNoImbalance disables the workload-imbalance
// fallback (alpha = +Inf).
func BenchmarkAblationNoImbalance(b *testing.B) {
	ablationBench(b, &catpa.PartitionOptions{Alpha: math.Inf(1)})
}

// BenchmarkAblationEq9Literal switches the Eq. 9 core-utilization
// metric to the literal worst-condition reading (DESIGN.md section 3).
func BenchmarkAblationEq9Literal(b *testing.B) {
	ablationBench(b, &catpa.PartitionOptions{Eq9Literal: true})
}

// dualPopulation pre-generates a dual-criticality population for the
// FP and classic-test benchmarks.
func dualPopulation(n int, nsu float64) []*catpa.TaskSet {
	cfg := catpa.DefaultGenConfig()
	cfg.K = 2
	cfg.NSU = nsu
	cfg.N = catpa.IntRange{Lo: 30, Hi: 80}
	sets := make([]*catpa.TaskSet, n)
	for i := range sets {
		sets[i] = catpa.GenerateTaskSet(&cfg, 77, i)
	}
	return sets
}

// BenchmarkFPPartition times partitioned fixed-priority AMC-rtb (FFD)
// against partitioned EDF-VD (FFD) on the same dual-criticality
// population, reporting both acceptance ratios (the comparison behind
// examples/fpcompare).
func BenchmarkFPPartition(b *testing.B) {
	sets := dualPopulation(150, 0.75)
	b.Run("AMC-rtb-FFD", func(b *testing.B) {
		b.ReportAllocs()
		ok := 0
		for i := 0; i < b.N; i++ {
			r, err := catpa.FPPartition(sets[i%len(sets)], 8, catpa.FFD)
			if err != nil {
				b.Fatal(err)
			}
			if r.Feasible {
				ok++
			}
		}
		b.ReportMetric(float64(ok)/float64(b.N), "sched_ratio")
	})
	b.Run("EDFVD-FFD", func(b *testing.B) {
		b.ReportAllocs()
		ok := 0
		for i := 0; i < b.N; i++ {
			if catpa.Partition(sets[i%len(sets)], 8, 2, catpa.FFD, nil).Feasible {
				ok++
			}
		}
		b.ReportMetric(float64(ok)/float64(b.N), "sched_ratio")
	})
}

// BenchmarkDualTests compares the cost and acceptance of the paper's
// Eq. 7-style dual test against the classic Baruah et al. (2012) test
// on single-core subsets near the feasibility boundary.
func BenchmarkDualTests(b *testing.B) {
	cfg := catpa.DefaultGenConfig()
	cfg.K = 2
	cfg.M = 1
	cfg.NSU = 0.8
	cfg.N = catpa.IntRange{Lo: 8, Hi: 20}
	mats := make([]*catpa.UtilMatrix, 200)
	for i := range mats {
		ts := catpa.GenerateTaskSet(&cfg, 77, i)
		m := catpa.NewUtilMatrix(2)
		for j := range ts.Tasks {
			m.Add(&ts.Tasks[j])
		}
		mats[i] = m
	}
	b.Run("Eq7-Theorem1", func(b *testing.B) {
		b.ReportAllocs()
		ok := 0
		for i := 0; i < b.N; i++ {
			if catpa.Feasible(mats[i%len(mats)]) {
				ok++
			}
		}
		b.ReportMetric(float64(ok)/float64(b.N), "accept_ratio")
	})
	b.Run("Classic2012", func(b *testing.B) {
		b.ReportAllocs()
		ok := 0
		for i := 0; i < b.N; i++ {
			if catpa.ClassicDualFeasible(mats[i%len(mats)]) {
				ok++
			}
		}
		b.ReportMetric(float64(ok)/float64(b.N), "accept_ratio")
	})
}

// BenchmarkFPAnalyze times one AMC-rtb analysis (three fixed points
// per HI task).
func BenchmarkFPAnalyze(b *testing.B) {
	cfg := catpa.DefaultGenConfig()
	cfg.K = 2
	cfg.M = 1
	cfg.NSU = 0.5
	cfg.N = catpa.IntRange{Lo: 12, Hi: 12}
	ts := catpa.GenerateTaskSet(&cfg, 3, 0)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if !catpa.FPSchedulable(ts.Tasks) {
			b.Fatal("population should be schedulable")
		}
	}
}

// BenchmarkSimulateCoreFP times the runtime under fixed-priority
// dispatching (same workload as BenchmarkSimulateCore).
func BenchmarkSimulateCoreFP(b *testing.B) {
	ts := catpa.NewTaskSet(
		catpa.Task{Period: 20, Crit: 2, WCET: []float64{1.5, 5}},
		catpa.Task{Period: 50, Crit: 2, WCET: []float64{3, 9}},
		catpa.Task{Period: 30, Crit: 1, WCET: []float64{7}},
		catpa.Task{Period: 100, Crit: 1, WCET: []float64{20}},
	)
	prio := catpa.FPPriorities(ts.Tasks)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		catpa.SimulateCore(catpa.CoreConfig{
			Tasks:         ts.Tasks,
			K:             2,
			Horizon:       10000,
			Model:         catpa.WorstCaseModel{},
			FixedPriority: true,
			Priorities:    prio,
		})
	}
}

// BenchmarkOnlineEvent times one online arrival/departure event —
// release a task, then admit it back — handled two ways: "batch"
// re-partitions the entire set per event (the pre-session answer to
// online workloads), "incremental" commits the O(1) delta pair on a
// live session. The ratio between the two is the payoff of the
// incremental Backend contract, and the incremental variant must stay
// at 0 allocs/op.
func BenchmarkOnlineEvent(b *testing.B) {
	cfg := catpa.DefaultGenConfig()
	ts := catpa.GenerateTaskSet(&cfg, 2016, 0)
	n := len(ts.Tasks)

	b.Run("batch", func(b *testing.B) {
		b.ReportAllocs()
		p := catpa.NewPartitioner(8, 4)
		for i := 0; i < b.N; i++ {
			// The event invalidates the whole partition: rebuild it.
			p.Evaluate(ts, catpa.CATPA, nil)
		}
	})
	b.Run("incremental", func(b *testing.B) {
		b.ReportAllocs()
		p := catpa.NewPartitioner(8, 4)
		p.StartIncremental(ts, catpa.CATPA, nil)
		for ti := 0; ti < n; ti++ {
			p.Admit(ti)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			ti := i % n
			if p.Assigned(ti) < 0 {
				continue
			}
			p.Release(ti)
			p.Admit(ti)
		}
	})
}

// BenchmarkOnlineScenario times the end-to-end online pipeline — CDF
// stream generation, the merged arrival/departure replay through
// incremental sessions for every variant, and the time-bucketed
// aggregation — and reports admission-verdict throughput. The steady
// state must stay allocation-free per replication (the per-iteration
// allocations are the sweep scaffolding, amortized across all sets).
func BenchmarkOnlineScenario(b *testing.B) {
	b.ReportAllocs()
	var arrivals int64
	var admitted int64
	for i := 0; i < b.N; i++ {
		sw := catpa.OnlineFigure(10, 2016)
		sw.Workers = 1
		res := sw.Run()
		arrivals, admitted = 0, 0
		for pi := range res.Points {
			for vi := range res.Points[pi].Cells {
				o := res.Points[pi].Cells[vi].Online
				arrivals += o.Admitted.N()
				admitted += o.Admitted.Hits()
			}
		}
	}
	b.ReportMetric(float64(arrivals)*float64(b.N)/b.Elapsed().Seconds(), "arrivals/s")
	b.ReportMetric(float64(admitted)/float64(arrivals), "admit_rate")
}
