module catpa

go 1.22
