package catpa_test

import (
	"testing"

	"catpa"
)

// TestFacadeEndToEnd walks the whole public API: generate, analyze,
// partition, simulate.
func TestFacadeEndToEnd(t *testing.T) {
	cfg := catpa.DefaultGenConfig()
	cfg.M = 4
	cfg.NSU = 0.45
	cfg.N = catpa.IntRange{Lo: 20, Hi: 40}
	ts := catpa.GenerateTaskSet(&cfg, 1, 0)
	if err := ts.Validate(); err != nil {
		t.Fatal(err)
	}

	res := catpa.Partition(ts, cfg.M, cfg.K, catpa.CATPA, nil)
	if !res.Feasible {
		t.Fatal("CA-TPA infeasible on an easy set")
	}
	if err := res.Verify(ts); err != nil {
		t.Fatal(err)
	}

	st := catpa.SimulateSystem(catpa.SystemConfig{
		Subsets: res.Subsets(ts),
		K:       cfg.K,
		Horizon: 5000,
	})
	if st.Missed() != 0 {
		t.Fatalf("%d deadline misses in worst-case simulation", st.Missed())
	}
}

func TestFacadeHandBuiltSet(t *testing.T) {
	ts := catpa.NewTaskSet(
		catpa.Task{Period: 100, Crit: 2, WCET: []float64{10, 25}},
		catpa.Task{Period: 50, Crit: 1, WCET: []float64{15}},
	)
	m := catpa.NewUtilMatrix(2)
	for i := range ts.Tasks {
		m.Add(&ts.Tasks[i])
	}
	if !catpa.SimpleFeasible(m) || !catpa.Feasible(m) {
		t.Fatal("tiny set should be feasible")
	}
	rep := catpa.Analyze(m)
	if rep.CoreUtil != catpa.CoreUtil(m) {
		t.Error("Analyze and CoreUtil disagree")
	}
	cs := catpa.Contributions(ts)
	if len(cs) != 2 {
		t.Fatalf("contributions = %d", len(cs))
	}
}

func TestFacadeSchemes(t *testing.T) {
	if len(catpa.Schemes) != 5 {
		t.Fatalf("schemes = %d", len(catpa.Schemes))
	}
	s, err := catpa.ParseScheme("CA-TPA")
	if err != nil || s != catpa.CATPA {
		t.Fatal("ParseScheme failed")
	}
}

func TestFacadeFigure(t *testing.T) {
	sw := catpa.Figure(1, 5, 1)
	sw.Workers = 2
	r := sw.Run()
	if len(r.Points) != 5 {
		t.Fatalf("points = %d", len(r.Points))
	}
	if ch := r.Chart(catpa.SchedRatio); len(ch.Series) != 5 {
		t.Fatalf("series = %d", len(ch.Series))
	}
	p := catpa.DefaultExpParams()
	if p.M != 8 {
		t.Errorf("default M = %d", p.M)
	}
}

func TestFacadeFP(t *testing.T) {
	ts := catpa.NewTaskSet(
		catpa.Task{Period: 10, Crit: 1, WCET: []float64{2}},
		catpa.Task{Period: 25, Crit: 2, WCET: []float64{4, 9}},
	)
	a, err := catpa.FPAnalyze(ts.Tasks)
	if err != nil || !a.Schedulable {
		t.Fatalf("FPAnalyze: %v, schedulable=%v", err, a != nil && a.Schedulable)
	}
	if !catpa.FPSchedulable(ts.Tasks) {
		t.Error("FPSchedulable disagrees")
	}
	if !catpa.FPMultiSchedulable(ts.Tasks, 2) {
		t.Error("FPMultiSchedulable disagrees")
	}
	ma, err := catpa.FPAnalyzeMulti(ts.Tasks, 2)
	if err != nil || !ma.Schedulable {
		t.Fatal("FPAnalyzeMulti failed")
	}
	prio := catpa.FPPriorities(ts.Tasks)
	if len(prio) != 2 || prio[0] != 0 {
		t.Errorf("priorities = %v", prio)
	}
	r, err := catpa.FPPartition(ts, 2, catpa.FFD)
	if err != nil || !r.Feasible {
		t.Fatal("FPPartition failed")
	}
	st := catpa.SimulateCore(catpa.CoreConfig{
		Tasks: ts.Tasks, K: 2, Horizon: 500,
		Model:         catpa.WorstCaseModel{},
		FixedPriority: true, Priorities: prio,
		BackgroundLO: true,
	})
	if st.Missed != 0 {
		t.Errorf("missed = %d", st.Missed)
	}
}

func TestFacadeClassicDual(t *testing.T) {
	m := catpa.NewUtilMatrix(2)
	tk := catpa.Task{ID: 1, Period: 10, Crit: 2, WCET: []float64{2, 9}}
	m.Add(&tk)
	if !catpa.ClassicDualFeasible(m) {
		t.Error("single HI task rejected by classic test")
	}
}

func TestFacadeModels(t *testing.T) {
	tk := catpa.Task{ID: 1, Period: 10, Crit: 2, WCET: []float64{2, 6}}
	var m catpa.ExecModel = catpa.WorstCaseModel{}
	if m.ExecTime(&tk, 0) != 6 {
		t.Error("WorstCaseModel via facade")
	}
	m = catpa.NewRandomModel(0.5, 0, 7)
	if v := m.ExecTime(&tk, 0); v <= 0 {
		t.Error("RandomModel via facade")
	}
	st := catpa.SimulateCore(catpa.CoreConfig{
		Tasks:   []catpa.Task{tk},
		K:       2,
		Horizon: 100,
		Model:   catpa.LevelModel{Level: 1},
	})
	if st.Missed != 0 {
		t.Error("misses in trivial sim")
	}
}
