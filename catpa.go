// Package catpa is a Go implementation of Criticality-Aware Task
// Partitioning (CA-TPA) for multicore mixed-criticality systems,
// reproducing Han, Tao, Zhu and Aydin, "Criticality-Aware Partitioning
// for Multicore Mixed-Criticality Systems" (ICPP 2016).
//
// The package is a facade over the implementation packages:
//
//   - the Vestal-style mixed-criticality task model and the
//     utilization-contribution algebra (internal/mc);
//   - the EDF-VD uniprocessor schedulability analysis, from the simple
//     utilization test to the multi-level Theorem-1 conditions with
//     virtual-deadline reduction factors (internal/edfvd);
//   - the partitioning heuristics WFD, FFD, BFD, Hybrid and CA-TPA
//     (internal/partition);
//   - the Section IV-A synthetic workload generator (internal/taskgen);
//   - an event-driven runtime simulator of partitioned EDF-VD with AMC
//     mode switching (internal/sim);
//   - the experiment harness regenerating every figure of the paper's
//     evaluation (internal/experiments).
//
// # Quick start
//
//	ts := catpa.NewTaskSet(
//	    catpa.Task{Period: 100, Crit: 2, WCET: []float64{10, 25}},
//	    catpa.Task{Period: 50, Crit: 1, WCET: []float64{15}},
//	)
//	res := catpa.Partition(ts, 2, 2, catpa.CATPA, nil)
//	if res.Feasible {
//	    fmt.Println(res) // per-core subsets, utilizations, lambdas
//	}
//
// See the examples directory for complete programs.
package catpa

import (
	"catpa/internal/edfvd"
	"catpa/internal/experiments"
	"catpa/internal/fpamc"
	"catpa/internal/mc"
	"catpa/internal/partition"
	"catpa/internal/sim"
	"catpa/internal/taskgen"
)

// Task model (internal/mc).
type (
	// Task is a periodic implicit-deadline mixed-criticality task:
	// WCET[k-1] is the level-k worst-case execution time, Period the
	// period and relative deadline, Crit the 1-based criticality level.
	Task = mc.Task
	// TaskSet is an ordered collection of tasks.
	TaskSet = mc.TaskSet
	// UtilMatrix carries the per-level utilization sums of a core's
	// subset with O(K) incremental updates.
	UtilMatrix = mc.UtilMatrix
	// Contribution holds a task's utilization contributions (Eqs. 12-13).
	Contribution = mc.Contribution
)

// NewTask constructs a validated task: the criticality level is
// len(wcet), the WCET vector must be non-decreasing, the period
// positive. It is the sanctioned way to build tasks (raw Task literals
// are rejected by mclint outside internal/mc and tests).
func NewTask(id int, name string, period float64, wcet ...float64) (Task, error) {
	return mc.NewTask(id, name, period, wcet...)
}

// MustTask is NewTask panicking on invalid parameters; convenient for
// hand-built workloads whose parameters are valid by construction.
func MustTask(id int, name string, period float64, wcet ...float64) Task {
	return mc.MustTask(id, name, period, wcet...)
}

// NewTaskSet builds a task set, assigning sequential IDs to tasks
// whose ID is zero.
func NewTaskSet(tasks ...Task) *TaskSet { return mc.NewTaskSet(tasks...) }

// NewUtilMatrix returns an empty utilization matrix for K levels.
func NewUtilMatrix(k int) *UtilMatrix { return mc.NewUtilMatrix(k) }

// Contributions computes every task's utilization contribution with
// respect to the whole set (Eq. 12).
func Contributions(ts *TaskSet) []Contribution { return mc.Contributions(ts) }

// EDF-VD schedulability analysis (internal/edfvd).
type (
	// Report is the full Theorem-1 analysis of one core's subset.
	Report = edfvd.Report
)

// Analyze runs the EDF-VD schedulability analysis on a core subset.
func Analyze(m *UtilMatrix) *Report { return edfvd.Analyze(m) }

// Feasible reports whether a core subset passes the EDF-VD test.
func Feasible(m *UtilMatrix) bool { return edfvd.Feasible(m) }

// SimpleFeasible is the pessimistic Eq. 4 test (plain EDF suffices).
func SimpleFeasible(m *UtilMatrix) bool { return edfvd.SimpleFeasible(m) }

// CoreUtil returns the Eq. 9 core utilization (+Inf if infeasible).
func CoreUtil(m *UtilMatrix) float64 { return edfvd.CoreUtil(m) }

// ClassicDualFeasible is the original dual-criticality EDF-VD test of
// Baruah et al. (2012); strictly stronger than the paper's Eq. 7.
func ClassicDualFeasible(m *UtilMatrix) bool { return edfvd.ClassicDualFeasible(m) }

// Fixed-priority AMC scheduling (internal/fpamc).
type (
	// FPAnalysis is the AMC-rtb response-time analysis of one core.
	FPAnalysis = fpamc.Analysis
	// FPResponse holds one task's analyzed response-time bounds.
	FPResponse = fpamc.Response
)

// FPAnalyze runs the dual-criticality AMC-rtb analysis on a subset.
func FPAnalyze(tasks []Task) (*FPAnalysis, error) { return fpamc.Analyze(tasks) }

// FPSchedulable reports whether a subset passes AMC-rtb.
func FPSchedulable(tasks []Task) bool { return fpamc.Schedulable(tasks) }

// FPPriorities returns the deadline-monotonic priority order.
func FPPriorities(tasks []Task) []int { return fpamc.Priorities(tasks) }

// FPPartition allocates a dual-criticality set under partitioned
// fixed-priority AMC: the unified allocator running atop the AMC-rtb
// analysis backend. All five heuristics are supported, including
// CA-TPA.
func FPPartition(ts *TaskSet, m int, scheme Scheme) (*PartitionResult, error) {
	return fpamc.Partition(ts, m, scheme)
}

// FPMultiAnalysis is the K-level generalization of the AMC-rtb
// analysis (Fleming-Burns style).
type FPMultiAnalysis = fpamc.MultiAnalysis

// FPAnalyzeMulti runs the K-level AMC-rtb analysis on a subset.
func FPAnalyzeMulti(tasks []Task, k int) (*FPMultiAnalysis, error) {
	return fpamc.AnalyzeMulti(tasks, k)
}

// FPMultiSchedulable reports whether a subset passes the K-level
// AMC-rtb analysis.
func FPMultiSchedulable(tasks []Task, k int) bool { return fpamc.MultiSchedulable(tasks, k) }

// Partitioning heuristics (internal/partition).
type (
	// Scheme identifies a partitioning heuristic.
	Scheme = partition.Scheme
	// PartitionOptions tunes a heuristic run (alpha threshold, trace,
	// ablation switches).
	PartitionOptions = partition.Options
	// PartitionResult is the outcome of one partitioning run.
	PartitionResult = partition.Result
	// CoreInfo summarizes one core of a finished partition.
	CoreInfo = partition.CoreInfo
	// OrderPolicy selects the task ordering (ablation switch).
	OrderPolicy = partition.OrderPolicy
)

// Task ordering policies for PartitionOptions.Order.
const (
	ContributionOrder = partition.ContributionOrder
	MaxUtilOrder      = partition.MaxUtilOrder
)

// The five heuristics of the paper.
const (
	WFD    = partition.WFD
	FFD    = partition.FFD
	BFD    = partition.BFD
	Hybrid = partition.Hybrid
	CATPA  = partition.CATPA
)

// Schemes lists all heuristics in the paper's presentation order.
var Schemes = partition.Schemes

// Partition allocates ts onto m cores (k criticality levels) with the
// given scheme; nil opts selects the paper's defaults.
func Partition(ts *TaskSet, m, k int, scheme Scheme, opts *PartitionOptions) *PartitionResult {
	return partition.Partition(ts, m, k, scheme, opts)
}

// ParseScheme maps a scheme name ("CA-TPA", "FFD", ...) to a Scheme.
func ParseScheme(name string) (Scheme, error) { return partition.ParseScheme(name) }

// Reusable partitioning fast path (internal/partition).
type (
	// Partitioner is a reusable, allocation-free partitioning engine
	// for fixed dimensions; see NewPartitioner.
	Partitioner = partition.Partitioner
	// PartitionEval is the cheap evaluation of one run: feasibility
	// plus the three aggregate metrics, without materializing a Result.
	PartitionEval = partition.Eval
)

// NewPartitioner returns a reusable engine for m cores and k levels.
// Its Run method is bit-identical to Partition but performs no heap
// allocations in the steady state; Evaluate additionally skips
// materializing the Result. Not safe for concurrent use.
func NewPartitioner(m, k int) *Partitioner { return partition.New(m, k) }

// Pluggable per-core analysis backends (internal/partition).
type (
	// AnalysisBackend answers the allocator's per-core schedulability
	// questions; the EDF-VD Theorem-1 analysis ("edfvd") and the
	// AMC-rtb response-time analysis ("amcrtb") both implement it.
	AnalysisBackend = partition.Backend
)

// DefaultBackend is the registry name of the EDF-VD Theorem-1 backend.
const DefaultBackend = partition.DefaultBackend

// FPBackendName is the registry name of the AMC-rtb backend.
const FPBackendName = fpamc.BackendName

// BackendNames returns the names of all registered analysis backends.
func BackendNames() []string { return partition.BackendNames() }

// NewAnalysisBackend returns a fresh instance of the named backend.
func NewAnalysisBackend(name string) (AnalysisBackend, error) { return partition.NewBackend(name) }

// NewPartitionerWithBackend returns a reusable engine whose per-core
// schedulability questions are answered by be instead of the default
// EDF-VD analysis; the engine takes ownership of be.
func NewPartitionerWithBackend(m, k int, be AnalysisBackend) *Partitioner {
	return partition.NewWithBackend(m, k, be)
}

// Workload generation (internal/taskgen).
type (
	// GenConfig describes a synthetic workload family (Section IV-A).
	GenConfig = taskgen.Config
	// Range is a closed float interval.
	Range = taskgen.Range
	// IntRange is a closed integer interval.
	IntRange = taskgen.IntRange
)

// DefaultGenConfig returns the paper's default workload parameters.
func DefaultGenConfig() GenConfig { return taskgen.DefaultConfig() }

// GenerateTaskSet produces the idx-th deterministic task set of the
// family rooted at seed.
func GenerateTaskSet(cfg *GenConfig, seed int64, idx int) *TaskSet {
	return taskgen.GenerateIndexed(cfg, seed, idx)
}

// TaskGenerator is a reusable workload generator: for any (cfg, seed,
// idx) it regenerates exactly the set of GenerateTaskSet while reusing
// all internal storage (the returned set is valid until the next
// Generate call). Not safe for concurrent use.
type TaskGenerator = taskgen.Generator

// NewTaskGenerator returns an empty reusable generator.
func NewTaskGenerator() *TaskGenerator { return taskgen.NewGenerator() }

// Runtime simulation (internal/sim).
type (
	// ExecModel decides how long each job actually executes.
	ExecModel = sim.ExecModel
	// NominalModel runs every job within its level-1 budget.
	NominalModel = sim.NominalModel
	// WorstCaseModel runs every job to its own-level WCET.
	WorstCaseModel = sim.WorstCaseModel
	// LevelModel runs every job to its level-k budget.
	LevelModel = sim.LevelModel
	// RandomModel draws demands randomly with sporadic overruns.
	RandomModel = sim.RandomModel
	// CoreConfig configures a single-core simulation.
	CoreConfig = sim.CoreConfig
	// CoreStats aggregates one simulated core.
	CoreStats = sim.CoreStats
	// SystemConfig configures a partitioned multicore simulation.
	SystemConfig = sim.SystemConfig
	// SystemStats aggregates a multicore simulation.
	SystemStats = sim.SystemStats
)

// NewRandomModel returns a seeded randomized execution model.
func NewRandomModel(minFraction, overrunProb float64, seed int64) *RandomModel {
	return sim.NewRandomModel(minFraction, overrunProb, seed)
}

// SimulateCore runs one core under EDF-VD with AMC mode switching.
func SimulateCore(cfg CoreConfig) *CoreStats { return sim.SimulateCore(cfg) }

// SimulateSystem runs every core of a partitioned system.
func SimulateSystem(cfg SystemConfig) *SystemStats { return sim.SimulateSystem(cfg) }

// Experiments (internal/experiments).
type (
	// Sweep describes one figure-style experiment.
	Sweep = experiments.Sweep
	// SweepResult is a finished sweep.
	SweepResult = experiments.Result
	// ExpParams is one experimental parameter point.
	ExpParams = experiments.Params
	// Metric identifies one of the four sub-figure metrics.
	Metric = experiments.Metric
	// Variant is one (scheme, analysis backend) cell of a sweep's
	// comparison; the zero Backend selects the default EDF-VD analysis.
	Variant = experiments.Variant
)

// ParseVariant parses a variant name: a scheme name optionally
// followed by "@backend" ("CA-TPA@amcrtb").
func ParseVariant(name string) (Variant, error) { return experiments.ParseVariant(name) }

// DefaultVariants returns the five paper schemes on the default
// EDF-VD backend.
func DefaultVariants() []Variant { return experiments.DefaultVariants() }

// The four metrics of every figure.
const (
	SchedRatio = experiments.SchedRatio
	Usys       = experiments.Usys
	Uavg       = experiments.Uavg
	Imbalance  = experiments.Imbalance
)

// Figure returns the sweep regenerating the given paper figure (1-5)
// or the backend-comparison extension (6).
func Figure(n, sets int, seed int64) *Sweep { return experiments.Figure(n, sets, seed) }

// OnlineFigure returns the online companion experiment: the same
// schemes admitting a Poisson arrival stream through incremental
// partitioner sessions, measured on admission rate, shed rate,
// occupancy and core utilization over time.
func OnlineFigure(sets int, seed int64) *Sweep { return experiments.OnlineFigure(sets, seed) }

// DefaultExpParams returns the paper's default parameter point.
func DefaultExpParams() ExpParams { return experiments.DefaultParams() }
